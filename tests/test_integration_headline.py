"""Integration tests: the Figures 10-13 headline shapes.

These assert the *shape* of the paper's results on the simulated
substrate — who wins, by roughly what factor, where the outliers sit —
not the absolute watt/joule numbers.
"""

import pytest

from repro.workloads.registry import STRESS_BENCHMARKS, application_names


class TestFigure10Ed2:
    def test_harmonia_average_near_paper(self, evaluation):
        # Paper: 12% average ED² improvement.
        value = evaluation.geomean_ed2("harmonia")
        assert 0.08 < value < 0.18

    def test_bpt_is_the_best_case(self, evaluation):
        # Paper: up to 36% savings in BPT.
        per_app = {
            app: evaluation.comparison(app, "harmonia").ed2_improvement
            for app in application_names()
        }
        assert max(per_app, key=per_app.get) == "BPT"
        assert 0.28 < per_app["BPT"] < 0.48

    def test_cg_contributes_roughly_half(self, evaluation):
        # Paper: of the 12%, about 6% is due to CG tuning (measured
        # excluding the stress benchmarks to avoid the Streamcluster
        # outlier swamping the mean).
        cg = evaluation.geomean_ed2("cg-only", exclude_stress=True)
        harmonia = evaluation.geomean_ed2("harmonia", exclude_stress=True)
        assert cg < harmonia

    def test_oracle_dominates_harmonia(self, evaluation):
        oracle = evaluation.geomean_ed2("oracle")
        harmonia = evaluation.geomean_ed2("harmonia")
        assert oracle >= harmonia

    def test_oracle_beats_or_matches_every_app(self, evaluation):
        for app in application_names():
            oracle = evaluation.comparison(app, "oracle").ed2_improvement
            harmonia = evaluation.comparison(app, "harmonia").ed2_improvement
            assert oracle >= harmonia - 0.02

    def test_oracle_never_loses_to_baseline(self, evaluation):
        for app in application_names():
            assert evaluation.comparison(app, "oracle").ed2_improvement >= \
                -1e-9


class TestFigure11Energy:
    def test_cg_and_harmonia_save_comparable_energy(self, evaluation):
        # Paper: "the energy savings is almost identical between the CG
        # and FG+CG schemes" — FG's role is performance protection.
        # (Excluding Streamcluster's CG disaster, which is a perf story.)
        apps = [a for a in application_names()
                if a not in ("Streamcluster",) + STRESS_BENCHMARKS]
        for app in apps:
            cg = evaluation.comparison(app, "cg-only").energy_improvement
            hm = evaluation.comparison(app, "harmonia").energy_improvement
            assert abs(hm - cg) < 0.20

    def test_harmonia_saves_energy_on_average(self, evaluation):
        assert evaluation.geomean_energy("harmonia") > 0.05


class TestFigure12Power:
    def test_average_power_saving_near_paper(self, evaluation):
        # Paper: 12% average card-power saving.
        value = evaluation.geomean_power("harmonia")
        assert 0.08 < value < 0.20

    def test_maximum_power_saving_band(self, evaluation):
        # Paper: up to ~19% (Stencil). Our maximum saver differs but the
        # magnitude band holds.
        best = max(
            evaluation.comparison(app, "harmonia").power_saving
            for app in application_names()
        )
        assert 0.15 < best < 0.35


class TestFigure13Performance:
    def test_harmonia_loses_almost_nothing(self, evaluation):
        # Paper: -0.36% average (excluding the stress benchmarks).
        value = evaluation.geomean_performance("harmonia",
                                               exclude_stress=True)
        assert -0.02 < value < 0.02

    def test_cg_only_average_loss(self, evaluation):
        # Paper: -2.2% average for CG-only.
        value = evaluation.geomean_performance("cg-only",
                                               exclude_stress=True)
        assert -0.06 < value < 0.0

    def test_streamcluster_is_the_cg_disaster(self, evaluation):
        # Paper: up to 27% CG-only slow-down in Streamcluster.
        delta = evaluation.comparison(
            "Streamcluster", "cg-only"
        ).performance_delta
        assert -0.40 < delta < -0.15

    def test_fg_rescues_streamcluster(self, evaluation):
        # Paper: Harmonia holds Streamcluster to -3.6%.
        delta = evaluation.comparison(
            "Streamcluster", "harmonia"
        ).performance_delta
        assert -0.06 < delta < 0.0

    def test_bpt_gains_performance(self, evaluation):
        # Paper: BPT +11% from reduced L2 interference.
        delta = evaluation.comparison("BPT", "harmonia").performance_delta
        assert 0.03 < delta < 0.20

    def test_cache_thrashers_do_not_slow_down(self, evaluation):
        # Paper: CFD and XSBench also improve (~3%).
        for app in ("CFD", "XSBench"):
            delta = evaluation.comparison(app, "harmonia").performance_delta
            assert delta > -0.02

    def test_no_app_loses_badly_under_harmonia(self, evaluation):
        for app in application_names():
            delta = evaluation.comparison(app, "harmonia").performance_delta
            assert delta > -0.06


class TestSection72DvfsOnly:
    def test_dvfs_only_is_clearly_weaker(self, evaluation):
        # Paper: frequency scaling alone gets 3% vs Harmonia's 12%.
        dvfs = evaluation.geomean_ed2("dvfs-only")
        harmonia = evaluation.geomean_ed2("harmonia")
        assert dvfs < 0.75 * harmonia

    def test_dvfs_only_small_performance_loss(self, evaluation):
        # Paper: ~1% performance loss.
        value = evaluation.geomean_performance("dvfs-only")
        assert -0.03 < value < 0.005

    def test_dvfs_only_never_touches_cu_or_memory(self, evaluation):
        run = evaluation.runs["CoMD"]["dvfs-only"]
        for record in run.trace.records:
            assert record.config.n_cu == 32
            assert record.config.f_mem == pytest.approx(1375e6)
