"""Unit tests for :mod:`repro.core.baseline` (PowerTune, Section 2.3)."""

import pytest

from repro.core.baseline import BaselinePolicy
from repro.core.policy import LaunchContext
from repro.units import GHZ, MHZ
from repro.workloads.registry import get_kernel

SPEC = get_kernel("MaxFlops.MaxFlops").base


def context_for(kernel_name="MaxFlops.MaxFlops", iteration=0):
    return LaunchContext(kernel_name=kernel_name, iteration=iteration,
                         spec=SPEC)


class TestBoostBehaviour:
    def test_always_boost_with_headroom(self, space):
        # Section 7: "the baseline power management always runs at the
        # boost frequency of 1 GHz for all applications".
        policy = BaselinePolicy(space)
        config = policy.config_for(context_for())
        assert config == space.max_config()

    def test_name(self, space):
        assert BaselinePolicy(space).name == "baseline"

    def test_stays_boost_after_observations(self, space, platform):
        policy = BaselinePolicy(space)
        for iteration in range(5):
            ctx = context_for(iteration=iteration)
            config = policy.config_for(ctx)
            result = platform.run_kernel(SPEC, config)
            policy.observe(ctx, result)
        assert policy.config_for(context_for(iteration=5)) == \
            space.max_config()


class TestTdpFallback:
    def test_falls_back_to_dpm2_over_tdp(self, space, platform):
        # A tight TDP makes PowerTune leave boost for DPM2.
        policy = BaselinePolicy(space, tdp_watts=100.0)
        ctx = context_for()
        result = platform.run_kernel(SPEC, policy.config_for(ctx))
        assert result.power.card > 100.0
        policy.observe(ctx, result)
        fallback = policy.config_for(context_for(iteration=1))
        assert fallback.f_cu == pytest.approx(900 * MHZ)
        assert fallback.n_cu == 32

    def test_default_tdp_never_triggers(self, space, platform):
        policy = BaselinePolicy(space)  # 250 W default
        ctx = context_for()
        result = platform.run_kernel(SPEC, policy.config_for(ctx))
        policy.observe(ctx, result)
        assert policy.config_for(context_for(iteration=1)).f_cu == \
            pytest.approx(1 * GHZ)

    def test_reset_clears_history(self, space, platform):
        policy = BaselinePolicy(space, tdp_watts=100.0)
        ctx = context_for()
        policy.observe(ctx, platform.run_kernel(SPEC, space.max_config()))
        policy.reset()
        assert policy.config_for(context_for(iteration=1)) == \
            space.max_config()
