"""Integration tests for the extension experiments."""

import pytest

from repro.experiments import (
    ext_memory_voltage,
    ext_model_validation,
    ext_phase_memory,
    ext_thermal_capping,
)


class TestMemoryVoltageScaling:
    @pytest.fixture(scope="class")
    def result(self, context):
        return ext_memory_voltage.run(context)

    def test_scaling_unlocks_savings(self, result):
        assert result.ed2_gain_from_scaling > 0.0
        assert result.power_gain_from_scaling > 0.0

    def test_gains_concentrate_on_bus_slowing_apps(self, result):
        by_app = {r.application: r for r in result.rows}
        for app in ("Sort", "MaxFlops", "LUD"):
            assert by_app[app].power_scaled > by_app[app].power_fixed

    def test_report_renders(self, result):
        report = ext_memory_voltage.format_report(result)
        assert "voltage" in report.lower()


class TestThermalCapping:
    @pytest.fixture(scope="class")
    def result(self, context):
        return ext_thermal_capping.run(context)

    def test_harmonia_wins_under_the_envelope(self, result):
        assert result.mean_speedup() > 0.01

    def test_harmonia_runs_cooler(self, result):
        for row in result.rows:
            assert row.harmonia_peak_temp <= row.baseline_peak_temp + 0.5

    def test_sustainable_power_between_draws(self, result):
        # The scenario is only meaningful if the envelope actually binds.
        assert 100.0 < result.sustainable_power < 200.0


class TestModelValidation:
    @pytest.fixture(scope="class")
    def result(self, context):
        return ext_model_validation.run(context)

    def test_models_agree(self, result):
        assert result.overall_mean_deviation() < 0.10
        assert result.min_correlation() > 0.75

    def test_all_kernels_validated(self, result):
        assert len(result.rows) == 25

    def test_stress_benchmarks_agree_tightly(self, result):
        by_kernel = {r.kernel: r for r in result.rows}
        assert by_kernel["MaxFlops.MaxFlops"].mean_abs_deviation < 0.02

    def test_report_renders(self, result):
        report = ext_model_validation.format_report(result)
        assert "OVERALL" in report


class TestPhaseMemoryRecall:
    @pytest.fixture(scope="class")
    def result(self, context):
        return ext_phase_memory.run(context)

    def test_recall_fires(self, result):
        assert result.recalls >= 2
        assert result.distinct_phases >= 2

    def test_recall_never_harms(self, result):
        # Neutral-or-better: the validation guard bounds any downside.
        assert result.ed2_with > result.ed2_without - 0.02
        assert result.perf_with > result.perf_without - 0.01

    def test_report_renders(self, result):
        report = ext_phase_memory.format_report(result)
        assert "recall" in report.lower()
