"""Unit tests for :mod:`repro.memory.controller`."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import CalibrationError
from repro.gpu.architecture import HD7970
from repro.memory.controller import MemoryControllerModel
from repro.memory.gddr5 import HD7970_GDDR5_TIMING
from repro.units import MHZ

MODEL = MemoryControllerModel(arch=HD7970, timing=HD7970_GDDR5_TIMING)


def achievable(f_mem=1375 * MHZ, n_cu=32, waves=10, outstanding=4.0, eff=0.8):
    return MODEL.achievable_bandwidth(
        f_mem=f_mem,
        n_cu=n_cu,
        waves_per_simd=waves,
        outstanding_per_wave=outstanding,
        access_efficiency=eff,
    )


class TestEfficiencyLimit:
    def test_full_occupancy_is_efficiency_limited(self):
        result = achievable()
        assert result.binding_limit == "efficiency"
        assert result.achievable == pytest.approx(0.8 * 264e9)

    def test_peak_matches_equation_2(self):
        assert achievable().peak == pytest.approx(264e9)

    def test_efficiency_one_is_peak(self):
        assert achievable(eff=1.0).efficiency_limited == pytest.approx(264e9)


class TestMlpLimit:
    def test_low_occupancy_is_mlp_limited(self):
        # Three waves per SIMD with modest per-wave concurrency cannot
        # cover the DRAM latency: the Figure 7 story.
        result = achievable(waves=3, outstanding=1.5)
        assert result.binding_limit == "mlp"
        assert result.achievable < result.efficiency_limited

    def test_mlp_scales_with_cus(self):
        few = achievable(n_cu=4, waves=3, outstanding=1.5)
        many = achievable(n_cu=32, waves=3, outstanding=1.5)
        assert many.mlp_limited == pytest.approx(8 * few.mlp_limited)

    def test_mlp_limited_kernels_insensitive_to_bus_frequency(self):
        # The MLP ceiling moves only through latency, which is mostly
        # frequency-independent.
        slow = achievable(f_mem=475 * MHZ, waves=3, outstanding=1.5)
        fast = achievable(f_mem=1375 * MHZ, waves=3, outstanding=1.5)
        assert fast.achievable / slow.achievable < 1.6

    def test_efficiency_limited_kernels_scale_with_bus_frequency(self):
        slow = achievable(f_mem=475 * MHZ)
        fast = achievable(f_mem=1375 * MHZ)
        assert fast.achievable / slow.achievable == pytest.approx(
            1375 / 475, rel=0.01
        )


class TestValidation:
    def test_bad_efficiency(self):
        with pytest.raises(CalibrationError):
            achievable(eff=0.0)

    def test_efficiency_above_one(self):
        with pytest.raises(CalibrationError):
            achievable(eff=1.2)

    def test_bad_outstanding(self):
        with pytest.raises(CalibrationError):
            achievable(outstanding=0.0)

    def test_bad_cu_count(self):
        with pytest.raises(CalibrationError):
            achievable(n_cu=0)


class TestProperties:
    @given(
        f_mem=st.sampled_from([f * MHZ for f in (475, 775, 1075, 1375)]),
        n_cu=st.sampled_from([4, 8, 16, 32]),
        waves=st.integers(min_value=1, max_value=10),
        outstanding=st.floats(min_value=0.5, max_value=8.0),
        eff=st.floats(min_value=0.3, max_value=1.0),
    )
    def test_achievable_never_exceeds_peak(self, f_mem, n_cu, waves,
                                           outstanding, eff):
        result = achievable(f_mem, n_cu, waves, outstanding, eff)
        assert 0 < result.achievable <= result.peak * (1 + 1e-9)

    @given(waves=st.integers(min_value=1, max_value=9))
    def test_more_waves_never_reduce_bandwidth(self, waves):
        fewer = achievable(waves=waves, outstanding=1.0)
        more = achievable(waves=waves + 1, outstanding=1.0)
        assert more.achievable >= fewer.achievable
