"""Unit tests for :mod:`repro.power.thermal`."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.baseline import BaselinePolicy
from repro.core.policy import LaunchContext
from repro.errors import CalibrationError, PolicyError
from repro.power.thermal import ThermalGovernor, ThermalModel, ThermalState
from repro.units import GHZ, MHZ
from repro.workloads.registry import get_kernel

MODEL = ThermalModel(resistance=0.5, capacitance=10.0, ambient=35.0,
                     t_max=95.0)


class TestThermalModel:
    def test_steady_state(self):
        assert MODEL.steady_state(100.0) == pytest.approx(85.0)

    def test_sustainable_power(self):
        assert MODEL.sustainable_power() == pytest.approx(120.0)
        assert MODEL.steady_state(MODEL.sustainable_power()) == \
            pytest.approx(MODEL.t_max)

    def test_time_constant(self):
        assert MODEL.time_constant == pytest.approx(5.0)

    def test_advance_exact_exponential(self):
        # One time constant covers 1 - 1/e of the gap.
        t = MODEL.advance(35.0, 100.0, MODEL.time_constant)
        expected = 85.0 + (35.0 - 85.0) * math.exp(-1.0)
        assert t == pytest.approx(expected)

    def test_advance_converges(self):
        assert MODEL.advance(35.0, 100.0, 100 * MODEL.time_constant) == \
            pytest.approx(85.0, abs=1e-6)

    def test_zero_dt_is_identity(self):
        assert MODEL.advance(50.0, 100.0, 0.0) == pytest.approx(50.0)

    def test_cooling(self):
        assert MODEL.advance(90.0, 0.0, 1.0) < 90.0

    @given(
        t0=st.floats(min_value=35.0, max_value=120.0),
        power=st.floats(min_value=0.0, max_value=300.0),
        dt=st.floats(min_value=0.0, max_value=100.0),
    )
    def test_temperature_bounded_by_endpoints(self, t0, power, dt):
        target = MODEL.steady_state(power)
        result = MODEL.advance(t0, power, dt)
        lo, hi = min(t0, target), max(t0, target)
        assert lo - 1e-9 <= result <= hi + 1e-9

    @pytest.mark.parametrize("kwargs", [
        dict(resistance=0.0, capacitance=1.0),
        dict(resistance=1.0, capacitance=0.0),
        dict(resistance=1.0, capacitance=1.0, ambient=100.0, t_max=95.0),
    ])
    def test_validation(self, kwargs):
        defaults = dict(resistance=0.5, capacitance=10.0, ambient=35.0,
                        t_max=95.0)
        defaults.update(kwargs)
        with pytest.raises(CalibrationError):
            ThermalModel(**defaults)


class TestThermalState:
    def test_starts_at_ambient(self):
        state = ThermalState(MODEL)
        assert state.temperature == pytest.approx(35.0)
        assert state.headroom == pytest.approx(60.0)

    def test_apply_heats(self):
        state = ThermalState(MODEL)
        state.apply(200.0, 5.0)
        assert state.temperature > 35.0
        assert state.peak_temperature == pytest.approx(state.temperature)

    def test_over_cap_accounting(self):
        state = ThermalState(MODEL, initial_temperature=100.0)
        state.apply(300.0, 1.0)  # stays hot
        state.apply(0.0, 100.0)  # cools fully
        assert 0.0 < state.fraction_above_cap() < 1.0

    def test_peak_survives_cooling(self):
        state = ThermalState(MODEL, initial_temperature=90.0)
        state.apply(0.0, 50.0)
        assert state.peak_temperature == pytest.approx(90.0)
        assert state.temperature < 40.0


class TestThermalGovernor:
    def _governor(self, space, margin=5.0, initial=None):
        governor = ThermalGovernor(BaselinePolicy(space), space, MODEL,
                                   margin=margin)
        if initial is not None:
            governor.thermal_state.apply(
                (initial - MODEL.ambient) / MODEL.resistance,
                1000 * MODEL.time_constant,
            )
        return governor

    def _context(self):
        spec = get_kernel("MaxFlops.MaxFlops").base
        return LaunchContext(kernel_name=spec.name, iteration=0, spec=spec)

    def test_cool_card_passes_through(self, space):
        governor = self._governor(space)
        assert governor.config_for(self._context()) == space.max_config()

    def test_hot_card_throttles_frequency(self, space):
        governor = self._governor(space, initial=94.0)
        config = governor.config_for(self._context())
        assert config.f_cu < 1 * GHZ
        assert config.n_cu == 32  # only the compute clock is shed

    def test_hotter_throttles_harder(self, space):
        warm = self._governor(space, initial=92.0)
        hot = self._governor(space, initial=101.0)
        assert hot.config_for(self._context()).f_cu < \
            warm.config_for(self._context()).f_cu

    def test_observe_integrates_heat(self, space, platform):
        governor = self._governor(space)
        ctx = self._context()
        config = governor.config_for(ctx)
        result = platform.run_kernel(ctx.spec, config)
        before = governor.thermal_state.temperature
        governor.observe(ctx, result)
        assert governor.thermal_state.temperature > before

    def test_name_tagged(self, space):
        assert self._governor(space).name == "baseline+thermal"

    def test_reset_returns_to_ambient(self, space):
        governor = self._governor(space, initial=100.0)
        governor.reset()
        assert governor.thermal_state.temperature == pytest.approx(35.0)

    def test_negative_margin_rejected(self, space):
        with pytest.raises(PolicyError):
            ThermalGovernor(BaselinePolicy(space), space, MODEL, margin=-1.0)


class TestOverrideDetection:
    def test_harmonia_ignores_overridden_launches(self, context):
        # When an outer governor overrides the requested configuration,
        # Harmonia must not attribute the feedback to its own FG move.
        from repro.core.harmonia import HarmoniaPolicy
        training = context.training
        platform = context.platform
        policy = HarmoniaPolicy(platform.config_space, training.compute,
                                training.bandwidth)
        spec = get_kernel("Stencil.Stencil2D").base
        ctx = LaunchContext(kernel_name=spec.name, iteration=0, spec=spec)
        requested = policy.config_for(ctx)
        overridden = platform.config_space.step_f_cu(requested, -2)
        result = platform.run_kernel(spec, overridden)
        policy.observe(ctx, result)
        # The policy holds its own decision instead of reacting.
        assert policy.config_for(ctx) == requested
        assert policy.control_state(spec.name).fg.inflight is None
