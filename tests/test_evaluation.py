"""Unit tests for :mod:`repro.analysis.evaluation`."""

import pytest

from repro.analysis.evaluation import ApplicationComparison
from repro.errors import AnalysisError
from repro.runtime.metrics import RunMetrics


def metrics(time=1.0, energy=100.0, power=100.0, gpu=60.0, mem=30.0):
    return RunMetrics(time=time, energy=energy, avg_power=power,
                      avg_gpu_power=gpu, avg_memory_power=mem)


class TestComparison:
    def test_ed2_improvement(self):
        comparison = ApplicationComparison(
            application="X", policy="p",
            baseline=metrics(time=1.0, energy=100.0),
            candidate=metrics(time=1.0, energy=88.0),
        )
        assert comparison.ed2_improvement == pytest.approx(0.12)

    def test_performance_delta_sign(self):
        slower = ApplicationComparison(
            application="X", policy="p",
            baseline=metrics(time=1.0),
            candidate=metrics(time=1.25),
        )
        assert slower.performance_delta == pytest.approx(-0.2)
        faster = ApplicationComparison(
            application="X", policy="p",
            baseline=metrics(time=1.0),
            candidate=metrics(time=0.8),
        )
        assert faster.performance_delta == pytest.approx(0.25)

    def test_power_saving(self):
        comparison = ApplicationComparison(
            application="X", policy="p",
            baseline=metrics(power=100.0),
            candidate=metrics(power=88.0),
        )
        assert comparison.power_saving == pytest.approx(0.12)


class TestSummary:
    def test_lookup(self, evaluation):
        comparison = evaluation.comparison("BPT", "harmonia")
        assert comparison.application == "BPT"
        assert comparison.policy == "harmonia"

    def test_unknown_cell_raises(self, evaluation):
        with pytest.raises(AnalysisError):
            evaluation.comparison("BPT", "nonexistent")

    def test_for_policy_covers_all_apps(self, evaluation):
        rows = evaluation.for_policy("harmonia")
        assert len(rows) == 14

    def test_geomean2_excludes_stress(self, evaluation):
        # Removing the stress benchmarks must change the mean.
        with_stress = evaluation.geomean_ed2("harmonia", exclude_stress=False)
        without = evaluation.geomean_ed2("harmonia", exclude_stress=True)
        assert with_stress != without

    def test_geomean_handles_large_regressions(self, evaluation):
        # Streamcluster's CG-only ED² is worse than -100% improvement;
        # the ratio-based geomean must still be finite.
        value = evaluation.geomean_ed2("cg-only")
        assert value == value  # not NaN
        assert -1.0 < value < 1.0

    def test_runs_recorded(self, evaluation):
        assert "baseline" in evaluation.runs["BPT"]
        assert "harmonia" in evaluation.runs["BPT"]
