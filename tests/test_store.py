"""The persistent content-addressed sweep store: digests, round trips,
robustness against corruption, concurrency, and the two-tier cache."""

from __future__ import annotations

import dataclasses
import json
import subprocess
import sys
import threading
from pathlib import Path

import numpy as np
import pytest

import repro.platform.store as store_module
from repro.platform.hd7970 import make_hd7970_platform, make_pitcairn_platform
from repro.platform.store import (
    GRID_KIND,
    SweepStore,
    batch_from_record,
    batch_to_record,
    canonical_encode,
    content_digest,
    resolve_store_dir,
)
from repro.platform.sweepcache import SweepCache
from repro.telemetry.handle import Telemetry
from repro.workloads.registry import all_kernels


@pytest.fixture()
def store(tmp_path):
    return SweepStore(tmp_path / "store")


def _grid_key(platform, spec):
    return platform.sweep_cache_key(spec)


# --- canonical encoding and digests ---------------------------------------------


class TestCanonicalEncoding:
    def test_digest_is_stable_hex(self, platform):
        spec = all_kernels()[0].base
        key = _grid_key(platform, spec)
        first = content_digest(key)
        assert first == content_digest(key)
        assert len(first) == 64
        assert set(first) <= set("0123456789abcdef")

    def test_bool_is_not_int(self):
        assert canonical_encode(True) != canonical_encode(1)
        assert canonical_encode(False) != canonical_encode(0)

    def test_floats_are_exact(self):
        # repr-close but unequal floats must encode differently.
        a = 0.1
        b = np.nextafter(0.1, 1.0)
        assert canonical_encode(a) != canonical_encode(b)
        assert canonical_encode(0.0) != canonical_encode(-0.0)

    def test_unencodable_types_raise(self):
        with pytest.raises(TypeError):
            canonical_encode({1, 2})
        with pytest.raises(TypeError):
            canonical_encode(object())

    def test_calibration_change_changes_digest(self):
        spec = all_kernels()[0].base
        plain = make_hd7970_platform()
        scaled = make_hd7970_platform(memory_voltage_scaling=True)
        pitcairn = make_pitcairn_platform()
        digests = {
            content_digest(_grid_key(p, spec))
            for p in (plain, scaled, pitcairn)
        }
        assert len(digests) == 3
        # Same calibration by value -> same digest across instances.
        assert content_digest(_grid_key(make_hd7970_platform(), spec)) \
            == content_digest(_grid_key(plain, spec))

    def test_kernel_characteristic_change_changes_digest(self, platform):
        spec = all_kernels()[0].base
        base = content_digest(_grid_key(platform, spec))
        for change in (
            {"valu_insts_per_item": spec.valu_insts_per_item * 1.0000001},
            {"l2_hit_rate": spec.l2_hit_rate + 1e-9},
            {"workgroup_size": spec.workgroup_size * 2},
            {"name": spec.name + "'"},
        ):
            changed = dataclasses.replace(spec, **change)
            assert content_digest(_grid_key(platform, changed)) != base

    def test_grid_axis_change_changes_digest(self, platform):
        spec = all_kernels()[0].base
        cal, _, axes = _grid_key(platform, spec)
        base = content_digest((cal, spec, axes))
        cus, f_cus, f_mems = axes
        assert content_digest((cal, spec, (cus[:-1], f_cus, f_mems))) != base
        assert content_digest(
            (cal, spec, (cus, f_cus[:-1] + (f_cus[-1] * 1.000001,), f_mems))
        ) != base


class TestResolveStoreDir:
    def test_explicit_override_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv(store_module.CACHE_DIR_ENV, str(tmp_path / "env"))
        assert resolve_store_dir(str(tmp_path / "flag")) == tmp_path / "flag"

    def test_env_beats_default(self, monkeypatch, tmp_path):
        monkeypatch.setenv(store_module.CACHE_DIR_ENV, str(tmp_path / "env"))
        assert resolve_store_dir() == tmp_path / "env"

    def test_default_under_home_cache(self, monkeypatch):
        monkeypatch.delenv(store_module.CACHE_DIR_ENV, raising=False)
        assert resolve_store_dir() == Path.home() / ".cache" / "repro-harmonia"


# --- round trips -----------------------------------------------------------------


class TestRoundTrip:
    def test_record_round_trip_is_bitwise(self, platform):
        batch = platform.grid_sweep(all_kernels()[0].base)
        rebuilt = batch_from_record(*batch_to_record(batch))
        _assert_batches_bitwise_equal(batch, rebuilt)

    def test_store_round_trip_is_bitwise(self, store, platform):
        for kernel in all_kernels()[:4]:
            batch = platform.grid_sweep(kernel.base)
            key = _grid_key(platform, kernel.base)
            assert store.save_batch(key, batch)
            loaded = store.load_batch(key)
            assert loaded is not None
            _assert_batches_bitwise_equal(batch, loaded)

    def test_derived_surfaces_survive(self, store, platform):
        spec = all_kernels()[2].base
        batch = platform.grid_sweep(spec)
        key = _grid_key(platform, spec)
        store.save_batch(key, batch)
        loaded = store.load_batch(key)
        np.testing.assert_array_equal(batch.card_power, loaded.card_power)
        np.testing.assert_array_equal(batch.energy, loaded.energy)
        np.testing.assert_array_equal(batch.ed2, loaded.ed2)
        assert batch.configs == loaded.configs
        assert batch.bandwidth_limit == loaded.bandwidth_limit
        assert batch.occupancy == loaded.occupancy

    def test_no_tempfiles_left_behind(self, store, platform):
        spec = all_kernels()[0].base
        store.save_batch(_grid_key(platform, spec), platform.grid_sweep(spec))
        leftovers = [p for p in store.root.iterdir()
                     if ".tmp" in p.name]
        assert leftovers == []


def _assert_batches_bitwise_equal(a, b):
    assert a.kernel_name == b.kernel_name
    np.testing.assert_array_equal(a.time, b.time)
    np.testing.assert_array_equal(a.compute_time, b.compute_time)
    np.testing.assert_array_equal(a.memory_time, b.memory_time)
    np.testing.assert_array_equal(a.achieved_bandwidth, b.achieved_bandwidth)
    np.testing.assert_array_equal(a.gpu_power, b.gpu_power)
    np.testing.assert_array_equal(a.memory_power, b.memory_power)
    assert a.launch_overhead == b.launch_overhead
    assert a.other_power == b.other_power
    assert a.counters.valu_utilization == b.counters.valu_utilization
    np.testing.assert_array_equal(a.counters.valu_busy, b.counters.valu_busy)
    np.testing.assert_array_equal(a.counters.ic_activity,
                                  b.counters.ic_activity)


# --- robustness ------------------------------------------------------------------


class TestRobustness:
    def test_absent_record_is_plain_miss(self, store, platform):
        key = _grid_key(platform, all_kernels()[0].base)
        assert store.load_batch(key) is None
        stats = store.stats()
        assert stats.misses == 1
        assert stats.invalid_records == 0

    def test_truncated_record_recomputes_and_rewrites(self, store, platform):
        spec = all_kernels()[0].base
        key = _grid_key(platform, spec)
        batch = platform.grid_sweep(spec)
        store.save_batch(key, batch)
        path = store.path_for(GRID_KIND, key)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])

        assert store.load_batch(key) is None
        assert store.stats().invalid_records == 1
        # The caller's recompute-and-rewrite heals the record.
        store.save_batch(key, batch)
        healed = store.load_batch(key)
        assert healed is not None
        _assert_batches_bitwise_equal(batch, healed)

    def test_corrupted_record_is_invalid_miss(self, store, platform):
        spec = all_kernels()[0].base
        key = _grid_key(platform, spec)
        store.save_batch(key, platform.grid_sweep(spec))
        path = store.path_for(GRID_KIND, key)
        path.write_bytes(b"\x00" * 100)
        assert store.load_batch(key) is None
        assert store.stats().invalid_records == 1

    def test_foreign_schema_is_miss(self, store, platform, monkeypatch):
        spec = all_kernels()[0].base
        key = _grid_key(platform, spec)
        batch = platform.grid_sweep(spec)
        monkeypatch.setattr(store_module, "STORE_SCHEMA_VERSION", 999)
        store.save_batch(key, batch)
        monkeypatch.undo()
        assert store.load_batch(key) is None
        assert store.stats().invalid_records == 1

    def test_wrong_kind_record_is_miss(self, store, platform):
        """A record copied under another kind's address fails the
        digest self-check."""
        spec = all_kernels()[0].base
        key = _grid_key(platform, spec)
        store.save_batch(key, platform.grid_sweep(spec))
        impostor = store.path_for("other", key)
        impostor.write_bytes(store.path_for(GRID_KIND, key).read_bytes())
        assert store.load_record("other", key) is None
        assert store.stats().invalid_records == 1

    def test_write_failure_degrades_silently(self, store, platform,
                                             monkeypatch):
        spec = all_kernels()[0].base
        key = _grid_key(platform, spec)
        batch = platform.grid_sweep(spec)

        def boom(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(store_module.os, "replace", boom)
        assert store.save_batch(key, batch) is False
        monkeypatch.undo()
        assert store.load_batch(key) is None  # nothing was published

    def test_semantically_broken_record_demoted_to_miss(self, store,
                                                        platform):
        """A valid npz whose arrays do not form a grid reads as a miss."""
        spec = all_kernels()[0].base
        key = _grid_key(platform, spec)
        store.save_record(GRID_KIND, key,
                          {"time": np.zeros(3, dtype=np.float64)})
        assert store.load_batch(key) is None
        stats = store.stats()
        assert stats.hits == 0
        assert stats.invalid_records == 1


# --- generic array records -------------------------------------------------------


class TestGenericRecords:
    def test_get_or_compute_arrays(self, store):
        calls = []

        def compute():
            calls.append(1)
            return {"time": np.arange(5, dtype=np.float64)}

        first = store.get_or_compute_arrays("eventsim", ("k",), compute)
        second = store.get_or_compute_arrays("eventsim", ("k",), compute)
        assert len(calls) == 1
        np.testing.assert_array_equal(first["time"], second["time"])

    def test_kinds_are_separate_namespaces(self, store):
        key = ("same",)
        store.save_record("a", key, {"x": np.ones(2)})
        assert store.load_record("b", key) is None
        assert store.load_record("a", key) is not None


# --- statistics and telemetry ----------------------------------------------------


class TestAccounting:
    def test_stats_count_bytes(self, store, platform):
        spec = all_kernels()[0].base
        key = _grid_key(platform, spec)
        store.save_batch(key, platform.grid_sweep(spec))
        store.load_batch(key)
        stats = store.stats()
        assert stats.hits == 1
        assert stats.bytes_written > 0
        assert stats.bytes_read == stats.bytes_written

    def test_telemetry_counters_and_spans(self, tmp_path, platform):
        telemetry = Telemetry()
        store = SweepStore(tmp_path / "s", telemetry=telemetry)
        spec = all_kernels()[0].base
        key = _grid_key(platform, spec)
        store.load_batch(key)  # miss
        store.save_batch(key, platform.grid_sweep(spec))
        store.load_batch(key)  # hit

        metrics = telemetry.metrics
        assert metrics.counter(
            "sweep_store_hits_total", "",
        ).value(kind=GRID_KIND) == 1.0
        assert metrics.counter(
            "sweep_store_misses_total", "",
        ).value(kind=GRID_KIND) == 1.0
        read = metrics.counter("sweep_store_bytes", "").value(
            direction="read")
        written = metrics.counter("sweep_store_bytes", "").value(
            direction="write")
        assert read == written > 0


# --- concurrency -----------------------------------------------------------------


class TestConcurrency:
    def test_racing_thread_writers_converge(self, store, platform):
        spec = all_kernels()[0].base
        key = _grid_key(platform, spec)
        batch = platform.grid_sweep(spec)
        errors = []

        def worker():
            try:
                for _ in range(5):
                    assert store.save_batch(key, batch)
                    loaded = store.load_batch(key)
                    if loaded is not None:
                        np.testing.assert_array_equal(batch.time, loaded.time)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        records = [p for p in store.root.iterdir() if ".tmp" not in p.name]
        assert len(records) == 1
        final = store.load_batch(key)
        _assert_batches_bitwise_equal(batch, final)

    def test_two_processes_converge(self, tmp_path, platform):
        """Two separate interpreters writing the same key publish one
        valid record, bitwise equal to an in-process sweep."""
        root = tmp_path / "shared-store"
        script = (
            "import sys\n"
            "from repro.platform.hd7970 import make_hd7970_platform\n"
            "from repro.platform.store import SweepStore\n"
            "from repro.workloads.registry import all_kernels\n"
            "platform = make_hd7970_platform()\n"
            "spec = all_kernels()[0].base\n"
            "store = SweepStore(sys.argv[1])\n"
            "key = platform.sweep_cache_key(spec)\n"
            "assert store.save_batch(key, platform.grid_sweep(spec))\n"
            "assert store.load_batch(key) is not None\n"
        )
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script, str(root)],
                env={**_clean_env(), "PYTHONPATH": "src"},
                cwd=Path(__file__).resolve().parent.parent,
            )
            for _ in range(2)
        ]
        for proc in procs:
            assert proc.wait(timeout=120) == 0

        spec = all_kernels()[0].base
        store = SweepStore(root)
        loaded = store.load_batch(platform.sweep_cache_key(spec))
        assert loaded is not None
        _assert_batches_bitwise_equal(platform.grid_sweep(spec), loaded)


def _clean_env():
    import os
    return {k: v for k, v in os.environ.items() if k != "PYTHONPATH"}


# --- the two-tier cache ----------------------------------------------------------


class TestTwoTierCache:
    def test_write_through_and_cross_instance_warm_start(self, tmp_path,
                                                         fresh_platform):
        spec = all_kernels()[0].base
        store = SweepStore(tmp_path / "s")
        first = SweepCache(store=store)
        batch = fresh_platform.grid_sweep(spec, cache=first)
        assert first.stats().memory == (0, 1)
        assert first.stats().store == (0, 1)  # cold store missed first

        # A second cache instance (a "second process") never computes.
        second = SweepCache(store=store)
        served = second.get_or_compute(
            fresh_platform.sweep_cache_key(spec),
            compute=lambda: pytest.fail("store should have served this"),
        )
        _assert_batches_bitwise_equal(batch, served)
        assert second.stats().memory == (0, 1)
        assert second.stats().store == (1, 0)
        # The store hit was promoted into the memory tier.
        second.get_or_compute(
            fresh_platform.sweep_cache_key(spec),
            compute=lambda: pytest.fail("memory should have served this"),
        )
        assert second.stats().memory == (1, 1)

    def test_get_consults_store(self, tmp_path, fresh_platform):
        spec = all_kernels()[1].base
        store = SweepStore(tmp_path / "s")
        key = fresh_platform.sweep_cache_key(spec)
        store.save_batch(key, fresh_platform.grid_sweep(spec))
        cache = SweepCache(store=store)
        assert cache.get(key) is not None
        assert cache.stats().store == (1, 0)
        assert cache.get(key) is not None  # now from memory
        assert cache.stats().memory == (1, 1)

    def test_detach_store_runs_memory_only(self, tmp_path, fresh_platform):
        spec = all_kernels()[0].base
        store = SweepStore(tmp_path / "s")
        cache = SweepCache(store=store)
        cache.detach_store()
        fresh_platform.grid_sweep(spec, cache=cache)
        assert cache.stats().store == (0, 0)
        assert not any(store.root.iterdir())

    def test_memory_clear_then_store_serves(self, tmp_path, fresh_platform):
        spec = all_kernels()[0].base
        cache = SweepCache(store=SweepStore(tmp_path / "s"))
        batch = fresh_platform.grid_sweep(spec, cache=cache)
        cache.clear()
        again = fresh_platform.grid_sweep(spec, cache=cache)
        _assert_batches_bitwise_equal(batch, again)
        assert cache.stats().store == (1, 1)

    def test_corrupted_store_record_recomputed_and_healed(
            self, tmp_path, fresh_platform):
        spec = all_kernels()[0].base
        store = SweepStore(tmp_path / "s")
        cache = SweepCache(store=store)
        key = fresh_platform.sweep_cache_key(spec)
        batch = fresh_platform.grid_sweep(spec, cache=cache)
        store.path_for(GRID_KIND, key).write_bytes(b"garbage")
        cache.clear()

        again = fresh_platform.grid_sweep(spec, cache=cache)
        _assert_batches_bitwise_equal(batch, again)
        # ... and the write-through healed the record on disk.
        healed = store.load_batch(key)
        assert healed is not None
        _assert_batches_bitwise_equal(batch, healed)

    def test_publish_emits_per_tier_counters(self, tmp_path, fresh_platform):
        spec = all_kernels()[0].base
        cache = SweepCache(store=SweepStore(tmp_path / "s"))
        fresh_platform.grid_sweep(spec, cache=cache)
        fresh_platform.grid_sweep(spec, cache=cache)
        telemetry = Telemetry()
        cache.publish(telemetry)
        hits = telemetry.metrics.counter("sweep_cache_hits_total", "")
        misses = telemetry.metrics.counter("sweep_cache_misses_total", "")
        assert hits.value(tier="memory") == 1.0
        assert misses.value(tier="memory") == 1.0
        assert misses.value(tier="store") == 1.0
        assert hits.value(tier="store") == 0.0


# --- zero-copy (memory-mapped) loads ----------------------------------------------


class TestMmapLoads:
    def test_mmap_round_trip_is_bitwise(self, store, fresh_platform):
        spec = all_kernels()[0].base
        batch = fresh_platform.grid_sweep(spec)
        key = _grid_key(fresh_platform, spec)
        store.save_batch(key, batch)
        loaded = store.load_batch(key, mmap=True)
        assert isinstance(loaded.time, np.memmap)
        assert isinstance(loaded.gpu_power, np.memmap)
        _assert_batches_bitwise_equal(batch, loaded)
        assert store.stats().mmap_hits == 1
        assert store.stats().hits == 1

    def test_release_hook_materializes_and_is_idempotent(
            self, store, fresh_platform):
        spec = all_kernels()[1].base
        key = _grid_key(fresh_platform, spec)
        batch = fresh_platform.grid_sweep(spec)
        store.save_batch(key, batch)
        loaded = store.load_batch(key, mmap=True)
        before = np.array(loaded.time)
        loaded.release_mmap()
        assert not isinstance(loaded.time, np.memmap)
        np.testing.assert_array_equal(loaded.time, before)
        _assert_batches_bitwise_equal(batch, loaded)
        loaded.release_mmap()  # second demote is a no-op

    def test_eager_loads_carry_no_release_hook(self, store, fresh_platform):
        spec = all_kernels()[0].base
        key = _grid_key(fresh_platform, spec)
        store.save_batch(key, fresh_platform.grid_sweep(spec))
        loaded = store.load_batch(key)  # mmap not requested
        assert not isinstance(loaded.time, np.memmap)
        assert not hasattr(loaded, "release_mmap")
        assert store.stats().mmap_hits == 0

    def test_legacy_compressed_zip_record_falls_back_to_eager(
            self, store, fresh_platform):
        # Rewrite the record in place as a compressed legacy .npz (the
        # format older builds published, compressed so nothing can map):
        # the load still serves the identical record, just eagerly, and
        # counts no mmap hit.
        spec = all_kernels()[0].base
        key = _grid_key(fresh_platform, spec)
        batch = fresh_platform.grid_sweep(spec)
        store.save_batch(key, batch)
        path = store.path_for(GRID_KIND, key)
        arrays, meta = store_module._read_record(path)
        np.savez_compressed(path, __meta__=np.array(json.dumps(meta)),
                            **arrays)
        loaded = store.load_batch(key, mmap=True)
        assert loaded is not None
        assert not isinstance(loaded.time, np.memmap)
        _assert_batches_bitwise_equal(batch, loaded)
        stats = store.stats()
        assert stats.mmap_hits == 0
        assert stats.hits == 1

    def test_legacy_zip_record_round_trips(self, store, fresh_platform):
        # A record rewritten as an uncompressed legacy .npz (what older
        # builds published) must still serve bitwise, eagerly and via
        # mmap, from the same filename.
        spec = all_kernels()[1].base
        key = _grid_key(fresh_platform, spec)
        batch = fresh_platform.grid_sweep(spec)
        store.save_batch(key, batch)
        path = store.path_for(GRID_KIND, key)
        arrays, meta = store_module._read_record(path)
        np.savez(path, __meta__=np.array(json.dumps(meta)), **arrays)
        eager = store.load_batch(key)
        _assert_batches_bitwise_equal(batch, eager)
        mapped = store.load_batch(key, mmap=True)
        _assert_batches_bitwise_equal(batch, mapped)
        assert store.stats().mmap_hits == 1

    def test_absent_and_corrupt_records_stay_misses(
            self, store, fresh_platform):
        spec = all_kernels()[0].base
        key = _grid_key(fresh_platform, spec)
        assert store.load_batch(key, mmap=True) is None
        store.save_batch(key, fresh_platform.grid_sweep(spec))
        store.path_for(GRID_KIND, key).write_bytes(b"garbage")
        assert store.load_batch(key, mmap=True) is None
        stats = store.stats()
        assert stats.misses == 2
        assert stats.invalid_records == 1
        assert stats.mmap_hits == 0

    def test_mmap_hit_emits_counter(self, tmp_path, fresh_platform):
        telemetry = Telemetry()
        store = SweepStore(tmp_path / "s", telemetry=telemetry)
        spec = all_kernels()[0].base
        key = _grid_key(fresh_platform, spec)
        store.save_batch(key, fresh_platform.grid_sweep(spec))
        store.load_batch(key, mmap=True)
        counter = telemetry.metrics.counter(
            "sweep_store_mmap_hits_total", "")
        assert counter.value(kind=GRID_KIND) == 1.0

    def test_cache_eviction_demotes_mapped_entry(
            self, tmp_path, fresh_platform):
        specs = [k.base for k in all_kernels()[:2]]
        store = SweepStore(tmp_path / "s")
        for spec in specs:
            store.save_batch(_grid_key(fresh_platform, spec),
                             fresh_platform.grid_sweep(spec))
        cache = SweepCache(maxsize=1, store=store)
        first = cache.get(_grid_key(fresh_platform, specs[0]))
        assert isinstance(first.time, np.memmap)
        held = np.array(first.time)
        cache.get(_grid_key(fresh_platform, specs[1]))  # evicts first
        assert not isinstance(first.time, np.memmap)
        np.testing.assert_array_equal(first.time, held)

    def test_cache_clear_demotes_mapped_entries(
            self, tmp_path, fresh_platform):
        spec = all_kernels()[0].base
        store = SweepStore(tmp_path / "s")
        store.save_batch(_grid_key(fresh_platform, spec),
                         fresh_platform.grid_sweep(spec))
        cache = SweepCache(store=store)
        entry = cache.get(_grid_key(fresh_platform, spec))
        assert isinstance(entry.time, np.memmap)
        cache.clear()
        assert not isinstance(entry.time, np.memmap)

    def test_mmap_loads_off_reads_eagerly(self, tmp_path, fresh_platform):
        spec = all_kernels()[0].base
        store = SweepStore(tmp_path / "s")
        store.save_batch(_grid_key(fresh_platform, spec),
                         fresh_platform.grid_sweep(spec))
        cache = SweepCache(store=store, mmap_loads=False)
        entry = cache.get(_grid_key(fresh_platform, spec))
        assert not isinstance(entry.time, np.memmap)
        assert store.stats().mmap_hits == 0
