"""Unit tests for :mod:`repro.core.coarse` (the CG block, Section 5.2)."""

import pytest

from repro.core.coarse import CoarseGrainTuner, DEFAULT_BIN_TARGETS, TUNABLES
from repro.gpu.architecture import HD7970
from repro.gpu.config import ConfigSpace
from repro.sensitivity.binning import Bin
from repro.sensitivity.predictor import (
    PAPER_BANDWIDTH_PREDICTOR,
    PAPER_COMPUTE_PREDICTOR,
)
from repro.units import GHZ, MHZ

SPACE = ConfigSpace(HD7970)


def make_tuner(**kwargs):
    return CoarseGrainTuner(
        space=SPACE,
        compute_predictor=PAPER_COMPUTE_PREDICTOR,
        bandwidth_predictor=PAPER_BANDWIDTH_PREDICTOR,
        **kwargs,
    )


def snapshot_for(tuner, compute, bandwidth):
    """A synthetic snapshot with explicit sensitivity values."""
    from repro.core.coarse import SensitivitySnapshot
    return SensitivitySnapshot(
        compute=compute,
        bandwidth=bandwidth,
        compute_bin=tuner.bins.classify(compute),
        bandwidth_bin=tuner.bins.classify(bandwidth),
    )


class TestTargets:
    def test_high_high_keeps_maximum(self):
        tuner = make_tuner()
        snap = snapshot_for(tuner, 0.9, 0.9)
        assert tuner.target_config(snap, SPACE.max_config()) == \
            SPACE.max_config()

    def test_low_bandwidth_drops_memory_to_minimum(self):
        # The MaxFlops story: bandwidth-insensitive -> lowest bus frequency.
        tuner = make_tuner()
        snap = snapshot_for(tuner, 0.9, 0.1)
        target = tuner.target_config(snap, SPACE.max_config())
        assert target.f_mem == pytest.approx(475 * MHZ)
        assert target.n_cu == 32

    def test_med_compute_keeps_frequency_high(self):
        # Section 7.3 insight 2: scale CUs and bandwidth, not frequency.
        tuner = make_tuner()
        snap = snapshot_for(tuner, 0.5, 0.9)
        target = tuner.target_config(snap, SPACE.max_config())
        assert target.n_cu < 32
        assert target.f_cu >= 900 * MHZ

    def test_low_compute_drops_cus_to_minimum(self):
        tuner = make_tuner()
        snap = snapshot_for(tuner, 0.1, 0.9)
        target = tuner.target_config(snap, SPACE.max_config())
        assert target.n_cu == 4

    def test_target_always_on_grid(self):
        tuner = make_tuner()
        for compute in (0.0, 0.2, 0.5, 0.8, 1.0):
            for bandwidth in (0.0, 0.5, 1.0):
                snap = snapshot_for(tuner, compute, bandwidth)
                assert tuner.target_config(snap, SPACE.max_config()) in SPACE


class TestRestriction:
    def test_frequency_only_tuner_moves_only_frequency(self):
        tuner = make_tuner(tunables=frozenset({"f_cu"}))
        snap = snapshot_for(tuner, 0.1, 0.1)
        target = tuner.target_config(snap, SPACE.max_config())
        assert target.n_cu == 32
        assert target.f_mem == pytest.approx(1375 * MHZ)
        assert target.f_cu < 1 * GHZ

    def test_unknown_tunable_rejected(self):
        with pytest.raises(ValueError):
            make_tuner(tunables=frozenset({"voltage"}))

    def test_missing_bin_target_rejected(self):
        with pytest.raises(ValueError):
            make_tuner(bin_targets={"n_cu": DEFAULT_BIN_TARGETS["n_cu"]})


class TestSnapshots:
    def test_snapshot_clamps_and_bins(self, platform, training):
        from repro.workloads.registry import get_kernel
        tuner = CoarseGrainTuner(
            space=SPACE,
            compute_predictor=training.compute,
            bandwidth_predictor=training.bandwidth,
        )
        counters = platform.run_kernel(
            get_kernel("MaxFlops.MaxFlops").base, platform.baseline_config()
        ).counters
        snap = tuner.snapshot(counters)
        assert 0.0 <= snap.compute <= 1.0
        assert 0.0 <= snap.bandwidth <= 1.0
        assert snap.compute_bin is Bin.HIGH
        assert snap.bandwidth_bin is Bin.LOW
        assert snap.bins == (Bin.HIGH, Bin.LOW)

    def test_default_targets_cover_all_tunables_and_bins(self):
        for tunable in TUNABLES:
            for bin_ in Bin:
                assert bin_ in DEFAULT_BIN_TARGETS[tunable]
