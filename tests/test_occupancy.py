"""Unit and property tests for :mod:`repro.gpu.occupancy` (Figure 7)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import KernelSpecError
from repro.gpu.architecture import HD7970
from repro.gpu.occupancy import compute_occupancy


def occupancy(vgpr=16, sgpr=24, lds=0, wg=256):
    return compute_occupancy(
        HD7970,
        vgprs_per_workitem=vgpr,
        sgprs_per_wave=sgpr,
        lds_bytes_per_workgroup=lds,
        workgroup_size=wg,
    )


class TestPaperAnchors:
    def test_sort_bottomscan_30_percent(self):
        # Section 3.5: 66 VGPRs -> floor(256/66) = 3 waves/SIMD = 30%.
        result = occupancy(vgpr=66)
        assert result.waves_per_simd == 3
        assert result.occupancy == pytest.approx(0.30)
        assert result.limiting_resource == "vgpr"

    def test_full_occupancy_when_unconstrained(self):
        # CoMD.AdvanceVelocity: VGPRs not limiting -> 100%.
        result = occupancy(vgpr=16)
        assert result.waves_per_simd == 10
        assert result.occupancy == pytest.approx(1.0)
        assert result.limiting_resource == "architectural"

    def test_just_over_quarter_of_file(self):
        # "more than 25% (66) of the total number of available VGPRs (256)"
        assert occupancy(vgpr=65).waves_per_simd == 3
        assert occupancy(vgpr=64).waves_per_simd == 4


class TestVgprLimits:
    @pytest.mark.parametrize("vgpr,expected_waves", [
        (25, 10),   # 256/25 = 10.24 -> capped at the architectural 10
        (26, 9),
        (32, 8),
        (52, 4),
        (86, 2),
        (128, 2),
        (129, 1),
        (256, 1),
    ])
    def test_wave_counts(self, vgpr, expected_waves):
        assert occupancy(vgpr=vgpr).waves_per_simd == expected_waves

    def test_vgpr_above_file_raises(self):
        with pytest.raises(KernelSpecError):
            occupancy(vgpr=257)


class TestSgprLimits:
    def test_sgpr_budget_can_bind(self):
        # Budget is 102 x 10; a 300-SGPR wave allows only 3 waves.
        result = occupancy(sgpr=102)
        assert result.limits.sgpr == 10
        result = occupancy(sgpr=100)
        assert result.limits.sgpr == 10

    def test_sgpr_above_file_raises(self):
        with pytest.raises(KernelSpecError):
            occupancy(sgpr=103)


class TestLdsLimits:
    def test_no_lds_does_not_limit(self):
        assert occupancy(lds=0).limits.lds == HD7970.max_waves_per_simd

    def test_heavy_lds_limits(self):
        # 32 KB per 256-item workgroup: 2 groups/CU x 4 waves / 4 SIMDs = 2.
        result = occupancy(lds=32 * 1024, wg=256)
        assert result.waves_per_simd == 2
        assert result.limiting_resource == "lds"

    def test_lds_above_cu_capacity_raises(self):
        with pytest.raises(KernelSpecError):
            occupancy(lds=65 * 1024)


class TestValidation:
    def test_zero_workgroup_raises(self):
        with pytest.raises(KernelSpecError):
            occupancy(wg=0)

    def test_zero_vgpr_raises(self):
        with pytest.raises(KernelSpecError):
            occupancy(vgpr=0)

    def test_negative_lds_raises(self):
        with pytest.raises(KernelSpecError):
            occupancy(lds=-1)


class TestProperties:
    @given(
        vgpr=st.integers(min_value=1, max_value=256),
        sgpr=st.integers(min_value=1, max_value=102),
        lds=st.integers(min_value=0, max_value=64 * 1024),
        wg=st.sampled_from([64, 128, 192, 256, 512]),
    )
    def test_occupancy_bounded(self, vgpr, sgpr, lds, wg):
        try:
            result = occupancy(vgpr=vgpr, sgpr=sgpr, lds=lds, wg=wg)
        except KernelSpecError:
            return  # kernel genuinely cannot fit one wave: acceptable
        assert 1 <= result.waves_per_simd <= HD7970.max_waves_per_simd
        assert 0 < result.occupancy <= 1.0

    @given(vgpr=st.integers(min_value=1, max_value=128))
    def test_more_vgprs_never_increase_occupancy(self, vgpr):
        fewer = occupancy(vgpr=vgpr)
        more = occupancy(vgpr=min(256, vgpr * 2))
        assert more.waves_per_simd <= fewer.waves_per_simd

    @given(lds=st.integers(min_value=256, max_value=32 * 1024))
    def test_more_lds_never_increases_occupancy(self, lds):
        try:
            smaller = occupancy(lds=lds)
            larger = occupancy(lds=min(64 * 1024, lds * 2))
        except KernelSpecError:
            return
        assert larger.waves_per_simd <= smaller.waves_per_simd

    def test_binding_resource_has_smallest_limit(self):
        result = occupancy(vgpr=66)
        limits = result.limits
        values = {
            "architectural": limits.architectural,
            "vgpr": limits.vgpr,
            "sgpr": limits.sgpr,
            "lds": limits.lds,
            "workgroup_slots": limits.workgroup_slots,
        }
        assert values[result.limiting_resource] == min(values.values())
