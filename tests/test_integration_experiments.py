"""Integration tests: shape assertions for every experiment module.

One test class per paper table/figure; each asserts the qualitative claim
the paper makes and exercises the module's report formatting.
"""

import pytest

from repro.experiments import (
    fig01_power_breakdown,
    fig03_balance,
    fig04_fig05_power_ranges,
    fig06_metric_tradeoffs,
    fig07_occupancy,
    fig08_divergence,
    fig09_clock_domains,
    fig10_13_evaluation,
    fig14_16_graph500,
    fig17_power_sharing,
    fig18_cg_vs_fg,
    sec72_variants,
    table1_dvfs,
    table2_table3_models,
)


class TestFigure1:
    def test_memory_is_major_consumer(self, context):
        result = fig01_power_breakdown.run(context)
        assert result.memory_fraction > 0.25
        assert result.gpu_fraction > result.memory_fraction

    def test_components_sum(self, context):
        result = fig01_power_breakdown.run(context)
        assert result.card_power == pytest.approx(
            result.gpu_power + result.memory_power + result.other_power
        )

    def test_report_renders(self, context):
        report = fig01_power_breakdown.format_report(
            fig01_power_breakdown.run(context)
        )
        assert "Figure 1" in report
        assert "MemPwr" in report


class TestTable1:
    def test_voltages_exact(self, context):
        result = table1_dvfs.run(context)
        assert result.max_voltage_error() == pytest.approx(0.0)

    def test_report_renders(self, context):
        report = table1_dvfs.format_report(table1_dvfs.run(context))
        assert "DPM2" in report


class TestFigure3:
    @pytest.fixture(scope="class")
    def balance(self, context):
        return fig03_balance.run(context)

    def test_maxflops_scales_to_about_27x(self, balance):
        peak = balance["MaxFlops"].peak_normalized_performance()
        assert 20.0 < peak < 32.0

    def test_maxflops_no_interior_knee(self, balance):
        curve = balance["MaxFlops"].curve_at_max_bandwidth()
        # Linear scaling: the knee is the rightmost point of the curve.
        assert curve.knee_ops_per_byte == pytest.approx(
            max(x for x, _ in curve.points), rel=1e-6
        )

    def test_devicememory_knee_near_4x(self, balance):
        knee = balance["DeviceMemory"].curve_at_max_bandwidth().knee_ops_per_byte
        assert 2.5 < knee < 6.0

    def test_devicememory_knees_shift_with_bandwidth(self, balance):
        # Each memory configuration has its own balance point; the knee's
        # *compute throughput* shrinks with available bandwidth.
        curves = sorted(balance["DeviceMemory"].curves, key=lambda c: c.f_mem)
        assert curves[0].knee_performance < curves[-1].knee_performance

    def test_lud_compute_bound_at_high_bandwidth(self, balance):
        curve = balance["LUD"].curve_at_max_bandwidth()
        # Best point is highest-and-rightmost (no interior saturation).
        assert curve.knee_ops_per_byte == pytest.approx(
            max(x for x, _ in curve.points), rel=1e-6
        )

    def test_report_renders(self, balance):
        report = fig03_balance.format_report(balance)
        assert "MaxFlops" in report and "LUD" in report


class TestFigures4And5:
    def test_compute_power_swing(self, context):
        result = fig04_fig05_power_ranges.run_fig04(context)
        # Paper: ~70% variation across compute configurations.
        assert 0.45 < result.variation < 0.85

    def test_memory_power_swing(self, context):
        result = fig04_fig05_power_ranges.run_fig05(context)
        # Paper: ~10% variation across memory configurations.
        assert 0.04 < result.variation < 0.15

    def test_report_renders(self, context):
        result = fig04_fig05_power_ranges.run_fig05(context)
        report = fig04_fig05_power_ranges.format_report(result, "10%")
        assert "Figure 5" in report


class TestFigure6:
    @pytest.fixture(scope="class")
    def tradeoffs(self, context):
        return fig06_metric_tradeoffs.run(context)

    def test_energy_optimal_hurts_performance(self, tradeoffs):
        # Paper: 69% / 66% loss. Our substrate shows the same *shape*:
        # optimizing energy costs double-digit performance.
        for result in tradeoffs.values():
            assert result.energy_opt_perf_loss > 0.10

    def test_ed2_optimal_nearly_free(self, tradeoffs):
        # Paper: ~1% performance penalty at the ED²-optimal point.
        for result in tradeoffs.values():
            assert result.ed2_opt_perf_loss < 0.04

    def test_ed2_optimal_saves_energy(self, tradeoffs):
        for result in tradeoffs.values():
            assert result.row("min-ed2").energy < 1.0

    def test_report_renders(self, tradeoffs):
        report = fig06_metric_tradeoffs.format_report(tradeoffs)
        assert "min-ed2" in report


class TestFigure7:
    def test_occupancy_gap(self, context):
        result = fig07_occupancy.run(context)
        assert result.low_occupancy.occupancy == pytest.approx(0.30)
        assert result.high_occupancy.occupancy == pytest.approx(1.0)

    def test_sensitivity_follows_occupancy(self, context):
        result = fig07_occupancy.run(context)
        assert result.low_occupancy.bandwidth_sensitivity < 0.3
        assert result.high_occupancy.bandwidth_sensitivity > 0.7

    def test_vgpr_is_the_limiter(self, context):
        result = fig07_occupancy.run(context)
        assert result.low_occupancy.limiting_resource == "vgpr"


class TestFigure8:
    def test_divergence_does_not_imply_sensitivity(self, context):
        result = fig08_divergence.run(context)
        # SRAD.Prepare: 75% divergence, ~zero frequency sensitivity.
        assert result.divergent_small.frequency_sensitivity < 0.3
        # Sort.BottomScan: 6% divergence, high frequency sensitivity.
        assert result.coherent_large.frequency_sensitivity > 0.7

    def test_instruction_counts_differ_by_orders(self, context):
        result = fig08_divergence.run(context)
        assert result.coherent_large.total_insts_millions > \
            100 * result.divergent_small.total_insts_millions


class TestFigure9:
    def test_ic_activity_and_sensitivity_both_high(self, context):
        result = fig09_clock_domains.run(context)
        assert result.ic_activity > 0.5
        assert result.frequency_sensitivity > 0.5

    def test_effect_strongest_at_low_clock(self, context):
        result = fig09_clock_domains.run(context)
        assert result.low_clock_sensitivity >= result.frequency_sensitivity

    def test_crossing_binds_at_low_clocks(self, context):
        result = fig09_clock_domains.run(context)
        assert result.crossing_limited_points() >= 3
        low_clock = result.bandwidth_vs_f_cu[0]
        assert low_clock[2] == "crossing"


class TestTables2And3:
    def test_correlations_strong(self, context):
        result = table2_table3_models.run(context)
        assert result.bandwidth_correlation > 0.90
        assert result.compute_correlation > 0.75

    def test_report_contains_paper_coefficients(self, context):
        report = table2_table3_models.format_report(
            table2_table3_models.run(context)
        )
        assert "+1.0030" in report    # paper icActivity coefficient
        assert "icActivity" in report


class TestFigures14To16:
    @pytest.fixture(scope="class")
    def graph500(self, context):
        return fig14_16_graph500.run(context)

    def test_instruction_totals_swing(self, graph500):
        # Figure 14: raw instruction totals vary significantly.
        assert graph500.instruction_swing() > 3.0

    def test_compute_frequency_pinned_at_boost(self, graph500):
        # Figure 16: high divergence keeps CUFreq at 1 GHz.
        assert graph500.dominant_f_cu() == pytest.approx(1e9)

    def test_memory_bus_dithers(self, graph500):
        # Figures 15/16: the memory bus visits multiple frequencies.
        assert graph500.mem_frequencies_visited() >= 2

    def test_cu_residency_dominated_by_32(self, graph500):
        assert graph500.cu_residency.dominant_value() == 32

    def test_report_renders(self, graph500):
        report = fig14_16_graph500.format_report(graph500)
        assert "Figure 14" in report


class TestFigure17:
    def test_gpu_dominates_savings(self, context):
        # Paper: ~64% of savings from compute, ~36% from memory.
        gpu_share, mem_share = fig17_power_sharing.run(context).savings_split()
        assert gpu_share > mem_share
        assert mem_share > 0.05

    def test_harmonia_total_below_baseline(self, context):
        result = fig17_power_sharing.run(context)
        for row in result.rows:
            baseline = row.baseline_gpu + row.baseline_memory
            harmonia = row.harmonia_gpu + row.harmonia_memory
            assert harmonia <= baseline * 1.02


class TestFigure18:
    def test_fg_adds_over_cg_for_outliers(self, context):
        result = fig18_cg_vs_fg.run(context)
        by_app = {r.application: r for r in result.contributions}
        # SPMV is the paper's canonical CG outlier rescued by FG.
        assert by_app["SPMV"].fg_contribution > 0.02

    def test_xsbench_is_cg_dominated(self, context):
        # Two iterations: FG has no room; CG does all the work.
        result = fig18_cg_vs_fg.run(context)
        by_app = {r.application: r for r in result.contributions}
        assert abs(by_app["XSBench"].fg_contribution) < 0.02

    def test_convergence_is_fast(self, context):
        result = fig18_cg_vs_fg.run(context)
        # Paper: CG 1 iteration, FG another 3-4 (ours allows some slack).
        assert result.median_settle_iterations() <= 20


class TestSection72:
    def test_variants_shape(self, context):
        result = sec72_variants.run(context)
        assert result.dvfs_only_ed2 < result.harmonia_ed2
        assert result.bandwidth_prediction_error < 0.15
        assert result.compute_prediction_error < 0.15

    def test_report_renders(self, context):
        report = sec72_variants.format_report(sec72_variants.run(context))
        assert "DVFS-only" in report


class TestFigure10To13Module:
    def test_run_and_reports(self, context):
        result = fig10_13_evaluation.run(context)
        assert len(result.applications) == 14
        for formatter in (fig10_13_evaluation.format_fig10,
                          fig10_13_evaluation.format_fig11,
                          fig10_13_evaluation.format_fig12,
                          fig10_13_evaluation.format_fig13):
            report = formatter(result)
            assert "geomean" in report

    def test_per_app_accessor(self, context):
        result = fig10_13_evaluation.run(context)
        values = result.per_app("harmonia", "ed2_improvement")
        assert set(values) == set(result.applications)
