"""Unit and property tests for :mod:`repro.perf.model`.

The performance model is the substrate's heart; these tests pin the
first-order behaviours every paper figure depends on.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.gpu.config import HardwareConfig
from repro.perf.kernelspec import KernelSpec
from repro.units import GHZ, MHZ


def compute_bound_spec(**overrides):
    defaults = dict(
        name="CB.Kernel",
        total_workitems=1 << 18,
        workgroup_size=256,
        valu_insts_per_item=4000.0,
        vfetch_insts_per_item=2.0,
        vwrite_insts_per_item=1.0,
        l2_hit_rate=0.9,
        outstanding_per_wave=1.0,
    )
    defaults.update(overrides)
    return KernelSpec(**defaults)


def memory_bound_spec(**overrides):
    defaults = dict(
        name="MB.Kernel",
        total_workitems=1 << 20,
        workgroup_size=256,
        valu_insts_per_item=30.0,
        vfetch_insts_per_item=8.0,
        vwrite_insts_per_item=4.0,
        bytes_per_fetch=16.0,
        bytes_per_write=16.0,
        l2_hit_rate=0.05,
        outstanding_per_wave=4.0,
    )
    defaults.update(overrides)
    return KernelSpec(**defaults)


@pytest.fixture(scope="module")
def model(platform):
    return platform.performance_model


BASE = HardwareConfig(32, 1 * GHZ, 1375 * MHZ)


class TestComputeScaling:
    def test_time_halves_with_double_frequency(self, model):
        slow = model.run(compute_bound_spec(), BASE.replace(f_cu=500 * MHZ))
        fast = model.run(compute_bound_spec(), BASE)
        assert slow.time / fast.time == pytest.approx(2.0, rel=0.05)

    def test_time_scales_with_cu_count(self, model):
        few = model.run(compute_bound_spec(), BASE.replace(n_cu=8))
        many = model.run(compute_bound_spec(), BASE)
        assert few.time / many.time == pytest.approx(4.0, rel=0.1)

    def test_compute_bound_flag(self, model):
        out = model.run(compute_bound_spec(), BASE)
        assert out.breakdown.compute_bound

    def test_divergence_slows_execution(self, model):
        coherent = model.run(compute_bound_spec(), BASE)
        divergent = model.run(
            compute_bound_spec(branch_divergence=0.5), BASE
        )
        assert divergent.time == pytest.approx(2 * coherent.time, rel=0.1)

    def test_memory_frequency_irrelevant(self, model):
        fast_mem = model.run(compute_bound_spec(), BASE)
        slow_mem = model.run(compute_bound_spec(),
                             BASE.replace(f_mem=475 * MHZ))
        assert slow_mem.time == pytest.approx(fast_mem.time, rel=0.02)


class TestMemoryScaling:
    def test_time_tracks_bandwidth(self, model):
        fast = model.run(memory_bound_spec(), BASE)
        slow = model.run(memory_bound_spec(), BASE.replace(f_mem=475 * MHZ))
        assert slow.time / fast.time == pytest.approx(1375 / 475, rel=0.15)

    def test_saturation_beyond_knee(self, model):
        # Figure 3b: adding compute beyond the knee buys nothing.
        some = model.run(memory_bound_spec(), BASE.replace(n_cu=16))
        more = model.run(memory_bound_spec(), BASE)
        assert more.time == pytest.approx(some.time, rel=0.05)

    def test_memory_bound_flag(self, model):
        out = model.run(memory_bound_spec(), BASE)
        assert not out.breakdown.compute_bound

    def test_clock_crossing_throttles_at_low_compute_clock(self, model):
        # Figure 9: a miss-heavy kernel loses bandwidth when the compute
        # clock drops below the crossing's saturation point.
        fast = model.run(memory_bound_spec(), BASE)
        slow = model.run(memory_bound_spec(), BASE.replace(f_cu=300 * MHZ))
        assert slow.bandwidth_limit == "crossing"
        assert slow.achieved_bandwidth < 0.5 * fast.achieved_bandwidth

    def test_thrash_recovery_speeds_up_fewer_cus(self, model):
        # The BPT effect: fewer CUs -> better hit rate -> faster.
        spec = memory_bound_spec(l2_hit_rate=0.3, l2_thrash_sensitivity=0.3,
                                 valu_insts_per_item=120.0)
        full = model.run(spec, BASE)
        gated = model.run(spec, BASE.replace(n_cu=16))
        assert gated.time < full.time


class TestCounterSynthesis:
    def test_compute_bound_counters(self, model):
        out = model.run(compute_bound_spec(), BASE)
        assert out.counters.valu_busy > 90.0
        assert out.counters.ic_activity < 0.2

    def test_memory_bound_counters(self, model):
        out = model.run(memory_bound_spec(), BASE)
        assert out.counters.mem_unit_busy > 90.0
        assert out.counters.ic_activity > 0.5
        assert out.counters.mem_unit_stalled > 0.0

    def test_utilization_reflects_divergence(self, model):
        out = model.run(compute_bound_spec(branch_divergence=0.4), BASE)
        assert out.counters.valu_utilization == pytest.approx(60.0)

    def test_register_normalization(self, model):
        out = model.run(compute_bound_spec(vgprs_per_workitem=64,
                                           sgprs_per_wave=51), BASE)
        assert out.counters.norm_vgpr == pytest.approx(64 / 256)
        assert out.counters.norm_sgpr == pytest.approx(51 / 102)

    def test_instruction_totals(self, model):
        spec = compute_bound_spec()
        out = model.run(spec, BASE)
        waves = spec.total_workitems / 64
        expected = waves * spec.valu_insts_per_item * 64 / 1e6
        assert out.counters.valu_insts_millions == pytest.approx(expected)

    def test_instruction_totals_config_invariant(self, model):
        # The PhaseDetector depends on this invariance.
        spec = memory_bound_spec()
        a = model.run(spec, BASE)
        b = model.run(spec, HardwareConfig(4, 300 * MHZ, 475 * MHZ))
        assert a.counters.valu_insts_millions == \
            pytest.approx(b.counters.valu_insts_millions)
        assert a.counters.norm_vgpr == pytest.approx(b.counters.norm_vgpr)


class TestInvariants:
    @settings(deadline=None, max_examples=60)
    @given(
        n_cu=st.sampled_from([4, 8, 16, 24, 32]),
        f_cu=st.sampled_from([300, 500, 700, 1000]),
        f_mem=st.sampled_from([475, 775, 1075, 1375]),
        valu=st.floats(min_value=1.0, max_value=5000.0),
        fetch=st.floats(min_value=0.0, max_value=20.0),
        hit=st.floats(min_value=0.0, max_value=0.95),
        div=st.floats(min_value=0.0, max_value=0.9),
    )
    def test_time_positive_and_counters_valid(self, n_cu, f_cu, f_mem,
                                              valu, fetch, hit, div):
        spec = KernelSpec(
            name="Prop.Kernel",
            total_workitems=1 << 16,
            workgroup_size=256,
            valu_insts_per_item=valu,
            vfetch_insts_per_item=fetch,
            vwrite_insts_per_item=1.0,
            l2_hit_rate=hit,
            branch_divergence=div,
        )
        config = HardwareConfig(n_cu, f_cu * MHZ, f_mem * MHZ)
        from repro.platform.hd7970 import make_hd7970_platform
        out = make_hd7970_platform().performance_model.run(spec, config)
        assert out.time > 0
        assert 0 <= out.counters.valu_busy <= 100
        assert 0 <= out.counters.mem_unit_busy <= 100
        assert 0 <= out.counters.ic_activity <= 1
        assert out.achieved_bandwidth >= 0

    @settings(deadline=None, max_examples=30)
    @given(f_cu=st.sampled_from([300, 400, 500, 600, 700, 800, 900]))
    def test_more_compute_frequency_never_slower(self, f_cu):
        from repro.platform.hd7970 import make_hd7970_platform
        model = make_hd7970_platform().performance_model
        spec = compute_bound_spec()
        slower = model.run(spec, BASE.replace(f_cu=f_cu * MHZ))
        faster = model.run(spec, BASE.replace(f_cu=(f_cu + 100) * MHZ))
        assert faster.time <= slower.time * (1 + 1e-9)

    @settings(deadline=None, max_examples=30)
    @given(f_mem=st.sampled_from([475, 625, 775, 925, 1075, 1225]))
    def test_more_bandwidth_never_slower(self, f_mem):
        from repro.platform.hd7970 import make_hd7970_platform
        model = make_hd7970_platform().performance_model
        spec = memory_bound_spec()
        slower = model.run(spec, BASE.replace(f_mem=f_mem * MHZ))
        faster = model.run(spec, BASE.replace(f_mem=(f_mem + 150) * MHZ))
        assert faster.time <= slower.time * (1 + 1e-9)
