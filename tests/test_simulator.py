"""Unit tests for :mod:`repro.runtime.simulator`."""

import pytest

from repro.core.baseline import BaselinePolicy
from repro.runtime.simulator import ApplicationRunner
from repro.workloads.registry import get_application


class TestRunner:
    def test_run_produces_all_launches(self, platform, space):
        app = get_application("CoMD")
        runner = ApplicationRunner(platform)
        result = runner.run(app, BaselinePolicy(space))
        assert len(result.trace) == app.total_launches()
        assert result.application == "CoMD"
        assert result.policy == "baseline"

    def test_metrics_match_trace(self, platform, space):
        app = get_application("Sort")
        runner = ApplicationRunner(platform)
        result = runner.run(app, BaselinePolicy(space))
        assert result.metrics.time == pytest.approx(result.trace.total_time())
        energy = sum(r.result.energy for r in result.trace.records)
        assert result.metrics.energy == pytest.approx(energy)

    def test_policy_drives_configs(self, platform, space, context):
        app = get_application("MaxFlops")
        runner = ApplicationRunner(platform)
        harmonia = context.harmonia_policy()
        result = runner.run(app, harmonia)
        configs = {r.config for r in result.trace.records}
        # Harmonia must have moved at least the memory bus off baseline.
        assert len(configs) > 1

    def test_reset_policy_flag(self, platform, space):
        app = get_application("XSBench")
        policy = BaselinePolicy(space)
        runner = ApplicationRunner(platform)
        runner.run(app, policy)
        # After reset_policy=True runs, the policy history starts fresh:
        assert policy.history_for(
            "XSBench.CalculateXS"
        ).last_result is not None  # history from the run itself

    def test_run_matrix_shape(self, platform, space):
        apps = [get_application("XSBench"), get_application("SRAD")]
        policies = [BaselinePolicy(space)]
        results = ApplicationRunner(platform).run_matrix(apps, policies)
        assert set(results) == {"XSBench", "SRAD"}
        assert set(results["XSBench"]) == {"baseline"}

    def test_run_matrix_fans_out_serial_exact(self, platform, space):
        apps = [get_application("XSBench"), get_application("SRAD")]
        runner = ApplicationRunner(platform)
        serial = runner.run_matrix(apps, [BaselinePolicy(space)])
        fanned = runner.run_matrix(
            apps, policy_factories=[lambda: BaselinePolicy(space)], jobs=4
        )
        assert set(serial) == set(fanned)
        for app in serial:
            for policy in serial[app]:
                assert serial[app][policy].metrics.time == \
                    fanned[app][policy].metrics.time
                assert serial[app][policy].metrics.energy == \
                    fanned[app][policy].metrics.energy

    def test_run_matrix_rejects_shared_instances_across_jobs(
            self, platform, space):
        from repro.errors import AnalysisError

        apps = [get_application("XSBench")]
        runner = ApplicationRunner(platform)
        with pytest.raises(AnalysisError):
            runner.run_matrix(apps, [BaselinePolicy(space)], jobs=2)
        with pytest.raises(AnalysisError):
            runner.run_matrix(apps)
        with pytest.raises(AnalysisError):
            runner.run_matrix(
                apps, [BaselinePolicy(space)],
                policy_factories=[lambda: BaselinePolicy(space)],
            )

    def test_iterations_execute_in_order(self, platform, space):
        app = get_application("LUD")
        result = ApplicationRunner(platform).run(app, BaselinePolicy(space))
        iterations = [r.iteration for r in result.trace.records]
        assert iterations == sorted(iterations)
