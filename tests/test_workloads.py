"""Unit tests for :mod:`repro.workloads` (Section 6's workload set)."""

import pytest

from repro.errors import WorkloadError
from repro.perf.kernelspec import KernelSpec
from repro.workloads.application import Application
from repro.workloads.kernel import (
    ConstantSchedule,
    CyclicSchedule,
    TableSchedule,
    WorkloadKernel,
)
from repro.workloads.registry import (
    STRESS_BENCHMARKS,
    all_applications,
    all_kernels,
    application_names,
    get_application,
    get_kernel,
)


class TestRegistry:
    def test_fourteen_applications(self):
        # Section 6: "We select 14 applications".
        assert len(application_names()) == 14

    def test_twenty_five_kernels(self):
        # Section 4: "a total of 25 application kernels".
        assert len(all_kernels()) == 25

    def test_paper_suite_membership(self):
        names = set(application_names())
        assert {"CoMD", "XSBench", "miniFE", "Graph500", "BPT", "CFD",
                "LUD", "SRAD", "Streamcluster", "Stencil", "Sort", "SPMV",
                "MaxFlops", "DeviceMemory"} == names

    def test_stress_benchmarks(self):
        # Geomean 2 excludes exactly these two (Section 7.1).
        assert set(STRESS_BENCHMARKS) == {"MaxFlops", "DeviceMemory"}

    def test_unknown_application_raises(self):
        with pytest.raises(WorkloadError):
            get_application("HPL")

    def test_unknown_kernel_raises(self):
        with pytest.raises(WorkloadError):
            get_kernel("Sort.NoSuchKernel")

    def test_kernel_lookup(self):
        kernel = get_kernel("Sort.BottomScan")
        assert kernel.base.vgprs_per_workitem == 66

    def test_fresh_instances(self):
        assert get_application("Sort") is not get_application("Sort")

    def test_kernel_names_are_qualified_and_unique(self):
        names = [k.name for k in all_kernels()]
        assert len(set(names)) == len(names)
        assert all("." in name for name in names)


class TestPaperAnchors:
    def test_xsbench_runs_two_iterations(self):
        # Section 7.2: "XSBench ... executes only 2 iterations".
        assert get_application("XSBench").iterations == 2

    def test_graph500_runs_eight_iterations(self):
        # Figure 14 shows eight successive iterations.
        assert get_application("Graph500").iterations == 8

    def test_srad_prepare_has_8_alu_insts(self):
        # Figure 8.
        assert get_kernel("SRAD.Prepare").base.valu_insts_per_item == 8.0

    def test_srad_prepare_divergence(self):
        # Figure 8: ~75% branch divergence.
        assert get_kernel("SRAD.Prepare").base.branch_divergence == \
            pytest.approx(0.75)

    def test_sort_bottomscan_divergence(self):
        # Figure 8: ~6%.
        assert get_kernel("Sort.BottomScan").base.branch_divergence == \
            pytest.approx(0.06)

    def test_sort_bottomscan_over_2m_instructions(self):
        spec = get_kernel("Sort.BottomScan").base
        assert spec.total_workitems * spec.valu_insts_per_item > 2e6

    def test_graph500_ops_per_byte_varies_widely(self):
        # Section 1: Graph500's ops/byte varies from 0.64 to bursts of 264.
        app = get_application("Graph500")
        demands = [spec.demanded_ops_per_byte()
                   for _, _, spec in app.launches()]
        assert max(demands) / min(demands) > 5.0


class TestSchedules:
    BASE = KernelSpec(
        name="S.K", total_workitems=1024, workgroup_size=256,
        valu_insts_per_item=10.0, vfetch_insts_per_item=1.0,
        vwrite_insts_per_item=1.0,
    )

    def test_constant_schedule(self):
        schedule = ConstantSchedule()
        assert schedule.spec_for_iteration(self.BASE, 5) == self.BASE

    def test_constant_rejects_negative_iteration(self):
        with pytest.raises(WorkloadError):
            ConstantSchedule().spec_for_iteration(self.BASE, -1)

    def test_table_schedule_wraps(self):
        schedule = TableSchedule(rows=(
            {"valu_insts_per_item": 1.0},
            {"valu_insts_per_item": 2.0},
        ))
        assert schedule.spec_for_iteration(self.BASE, 0).valu_insts_per_item == 1.0
        assert schedule.spec_for_iteration(self.BASE, 3).valu_insts_per_item == 2.0

    def test_table_schedule_clamps(self):
        schedule = TableSchedule(rows=(
            {"valu_insts_per_item": 1.0},
            {"valu_insts_per_item": 2.0},
        ), wrap=False)
        assert schedule.spec_for_iteration(self.BASE, 9).valu_insts_per_item == 2.0

    def test_table_schedule_rejects_empty(self):
        with pytest.raises(WorkloadError):
            TableSchedule(rows=())

    def test_cyclic_schedule_scales_work(self):
        schedule = CyclicSchedule(work_factors=(0.5, 2.0))
        assert schedule.spec_for_iteration(self.BASE, 0).total_workitems == 512
        assert schedule.spec_for_iteration(self.BASE, 1).total_workitems == 2048

    def test_cyclic_schedule_floors_at_one_workgroup(self):
        schedule = CyclicSchedule(work_factors=(0.001,))
        spec = schedule.spec_for_iteration(self.BASE, 0)
        assert spec.total_workitems == self.BASE.workgroup_size

    def test_cyclic_rejects_non_positive_factor(self):
        with pytest.raises(WorkloadError):
            CyclicSchedule(work_factors=(0.0,))


class TestApplication:
    def test_launch_ordering(self):
        app = get_application("CoMD")
        launches = list(app.launches())
        assert len(launches) == app.total_launches()
        first_iteration = [k.name for _, k, _ in launches[:3]]
        assert first_iteration == list(app.kernel_names())

    def test_rejects_empty_kernel_list(self):
        with pytest.raises(WorkloadError):
            Application(name="X", suite="S", kernels=(), iterations=1)

    def test_rejects_zero_iterations(self):
        kernel = WorkloadKernel(base=TestSchedules.BASE)
        with pytest.raises(WorkloadError):
            Application(name="X", suite="S", kernels=(kernel,), iterations=0)

    def test_rejects_duplicate_kernel_names(self):
        kernel = WorkloadKernel(base=TestSchedules.BASE)
        with pytest.raises(WorkloadError):
            Application(name="X", suite="S", kernels=(kernel, kernel),
                        iterations=1)

    def test_graph500_phases_change_specs(self):
        app = get_application("Graph500")
        bottom = next(k for k in app.kernels
                      if k.name == "Graph500.BottomStepUp")
        specs = {bottom.spec_for_iteration(i).total_workitems
                 for i in range(app.iterations)}
        assert len(specs) > 3

    def test_all_kernel_specs_valid_on_all_iterations(self):
        for app in all_applications():
            for _, _, spec in app.launches():
                assert spec.total_workitems > 0
