"""Unit tests for :mod:`repro.perf.eventsim`."""

import pytest

from repro.errors import AnalysisError
from repro.memory.controller import MemoryControllerModel
from repro.perf.eventsim import EventDrivenModel
from repro.platform.calibration import default_calibration
from repro.units import GHZ, MHZ
from repro.workloads.registry import get_kernel


@pytest.fixture(scope="module")
def event_model():
    calibration = default_calibration()
    controller = MemoryControllerModel(
        arch=calibration.arch, timing=calibration.gddr5_timing
    )
    return EventDrivenModel(
        calibration.arch, controller, calibration.clock_domain_model()
    )


@pytest.fixture(scope="module")
def base_config(platform):
    return platform.baseline_config()


class TestBasicBehaviour:
    def test_produces_positive_time(self, event_model, base_config):
        result = event_model.run(get_kernel("MaxFlops.MaxFlops").base,
                                 base_config)
        assert result.time > 0
        assert result.total_waves > 0
        assert 0 < result.simulated_waves <= result.total_waves

    def test_compute_bound_scales_with_frequency(self, event_model,
                                                 base_config):
        spec = get_kernel("MaxFlops.MaxFlops").base
        fast = event_model.run(spec, base_config)
        slow = event_model.run(spec, base_config.replace(f_cu=500 * MHZ))
        assert slow.time / fast.time == pytest.approx(2.0, rel=0.05)

    def test_compute_bound_scales_with_cus(self, event_model, base_config):
        spec = get_kernel("MaxFlops.MaxFlops").base
        full = event_model.run(spec, base_config)
        half = event_model.run(spec, base_config.replace(n_cu=16))
        assert half.time / full.time == pytest.approx(2.0, rel=0.1)

    def test_memory_bound_scales_with_bus(self, event_model, base_config):
        spec = get_kernel("DeviceMemory.DeviceMemory").base
        fast = event_model.run(spec, base_config)
        slow = event_model.run(spec, base_config.replace(f_mem=475 * MHZ))
        assert slow.time / fast.time == pytest.approx(1375 / 475, rel=0.2)

    def test_memory_bound_insensitive_to_extra_compute(self, event_model,
                                                       base_config):
        spec = get_kernel("DeviceMemory.DeviceMemory").base
        some = event_model.run(spec, base_config.replace(n_cu=16))
        more = event_model.run(spec, base_config)
        assert more.time == pytest.approx(some.time, rel=0.1)

    def test_simd_busy_fraction_bounded(self, event_model, base_config):
        for kernel in ("MaxFlops.MaxFlops", "DeviceMemory.DeviceMemory"):
            result = event_model.run(get_kernel(kernel).base, base_config)
            assert 0 <= result.simd_busy_fraction <= 1

    def test_compute_bound_keeps_simds_busy(self, event_model, base_config):
        result = event_model.run(get_kernel("MaxFlops.MaxFlops").base,
                                 base_config)
        assert result.simd_busy_fraction > 0.9


class TestEmergentEffects:
    def test_occupancy_limits_latency_hiding(self, event_model, base_config):
        # The MLP limit is not an input here — low occupancy must
        # *emerge* as memory-frequency insensitivity (Figure 7).
        spec = get_kernel("Sort.BottomScan").base
        fast = event_model.run(spec, base_config)
        slow = event_model.run(spec, base_config.replace(f_mem=475 * MHZ))
        assert slow.time / fast.time < 1.3

    def test_clock_crossing_emerges(self, event_model, base_config):
        spec = get_kernel("DeviceMemory.DeviceMemory").base
        normal = event_model.run(spec, base_config)
        throttled = event_model.run(spec,
                                    base_config.replace(f_cu=300 * MHZ))
        assert throttled.time > 1.8 * normal.time

    def test_wave_cap_scaling_is_consistent(self, base_config):
        # Doubling the wave cap must barely change the (scaled) time —
        # the steady-state assumption behind the cap.
        calibration = default_calibration()
        controller = MemoryControllerModel(
            arch=calibration.arch, timing=calibration.gddr5_timing
        )
        small = EventDrivenModel(calibration.arch, controller,
                                 calibration.clock_domain_model(),
                                 max_simulated_waves=128)
        large = EventDrivenModel(calibration.arch, controller,
                                 calibration.clock_domain_model(),
                                 max_simulated_waves=512)
        spec = get_kernel("DeviceMemory.DeviceMemory").base
        a = small.run(spec, base_config).time
        b = large.run(spec, base_config).time
        assert a == pytest.approx(b, rel=0.1)

    def test_rejects_tiny_wave_cap(self):
        calibration = default_calibration()
        controller = MemoryControllerModel(
            arch=calibration.arch, timing=calibration.gddr5_timing
        )
        with pytest.raises(AnalysisError):
            EventDrivenModel(calibration.arch, controller,
                             calibration.clock_domain_model(),
                             max_simulated_waves=4)
