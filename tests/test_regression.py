"""Unit tests for :mod:`repro.sensitivity.regression` (Section 4.3)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import AnalysisError
from repro.sensitivity.regression import LinearModel, fit_linear_model, pearson


class TestPearson:
    def test_perfect_correlation(self):
        assert pearson([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_perfect_anticorrelation(self):
        assert pearson([1, 2, 3], [6, 4, 2]) == pytest.approx(-1.0)

    def test_constant_vector_is_zero(self):
        assert pearson([1, 1, 1], [1, 2, 3]) == 0.0

    def test_mismatched_lengths(self):
        with pytest.raises(AnalysisError):
            pearson([1, 2], [1, 2, 3])

    def test_too_few_points(self):
        with pytest.raises(AnalysisError):
            pearson([1], [1])

    @given(st.lists(st.floats(min_value=-100, max_value=100),
                    min_size=3, max_size=30))
    def test_bounded(self, values):
        other = [v * 2 + 1 for v in values]
        r = pearson(values, other)
        assert -1.0 - 1e-9 <= r <= 1.0 + 1e-9


class TestFitLinearModel:
    def test_recovers_exact_linear_relationship(self):
        rows = [{"a": float(i), "b": float(i * i)} for i in range(10)]
        targets = [3.0 + 2.0 * r["a"] - 0.5 * r["b"] for r in rows]
        model = fit_linear_model(rows, targets, ("a", "b"))
        assert model.intercept == pytest.approx(3.0, abs=1e-8)
        assert model.coefficients["a"] == pytest.approx(2.0, abs=1e-8)
        assert model.coefficients["b"] == pytest.approx(-0.5, abs=1e-8)
        assert model.correlation == pytest.approx(1.0)

    def test_prediction_matches_formula(self):
        model = LinearModel(
            feature_names=("x",), intercept=1.0,
            coefficients={"x": 2.0}, correlation=1.0,
        )
        assert model.predict({"x": 3.0}) == pytest.approx(7.0)

    def test_predict_missing_feature_raises(self):
        model = LinearModel(
            feature_names=("x",), intercept=0.0,
            coefficients={"x": 1.0}, correlation=1.0,
        )
        with pytest.raises(AnalysisError):
            model.predict({"y": 1.0})

    def test_coefficient_rows_start_with_intercept(self):
        model = LinearModel(
            feature_names=("x", "y"), intercept=0.5,
            coefficients={"x": 1.0, "y": 2.0}, correlation=0.9,
        )
        rows = model.coefficient_rows()
        assert rows[0] == ("Intercept", 0.5)
        assert rows[1] == ("x", 1.0)

    def test_feature_subset_selection(self):
        rows = [{"a": float(i), "noise": float(i % 3)} for i in range(20)]
        targets = [1.0 + 4.0 * r["a"] for r in rows]
        model = fit_linear_model(rows, targets, ("a",))
        assert "noise" not in model.coefficients
        assert model.coefficients["a"] == pytest.approx(4.0, abs=1e-8)

    def test_empty_rows_raise(self):
        with pytest.raises(AnalysisError):
            fit_linear_model([], [], ("a",))

    def test_mismatched_targets_raise(self):
        with pytest.raises(AnalysisError):
            fit_linear_model([{"a": 1.0}], [1.0, 2.0], ("a",))

    def test_missing_feature_in_row_raises(self):
        with pytest.raises(AnalysisError):
            fit_linear_model([{"a": 1.0}, {"b": 2.0}], [1.0, 2.0], ("a",))

    def test_no_features_raise(self):
        with pytest.raises(AnalysisError):
            fit_linear_model([{"a": 1.0}], [1.0], ())

    @given(
        slope=st.floats(min_value=-5, max_value=5),
        intercept=st.floats(min_value=-5, max_value=5),
    )
    def test_recovers_arbitrary_line(self, slope, intercept):
        rows = [{"x": float(i)} for i in range(8)]
        targets = [intercept + slope * r["x"] for r in rows]
        model = fit_linear_model(rows, targets, ("x",))
        assert model.intercept == pytest.approx(intercept, abs=1e-6)
        assert model.coefficients["x"] == pytest.approx(slope, abs=1e-6)
