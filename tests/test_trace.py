"""Unit tests for :mod:`repro.runtime.trace` (Figures 15-16 machinery)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import AnalysisError
from repro.gpu.config import HardwareConfig
from repro.runtime.trace import LaunchRecord, ResidencyTable, RunTrace
from repro.units import GHZ, MHZ
from repro.workloads.registry import get_kernel


def make_record(platform, kernel="MaxFlops.MaxFlops", iteration=0,
                config=None):
    spec = get_kernel(kernel).base
    config = config or platform.baseline_config()
    result = platform.run_kernel(spec, config)
    return LaunchRecord(iteration=iteration, kernel_name=kernel,
                        result=result)


class TestRunTrace:
    def test_records_in_order(self, platform):
        trace = RunTrace()
        for i in range(3):
            trace.append(make_record(platform, iteration=i))
        assert len(trace) == 3
        assert [r.iteration for r in trace.records] == [0, 1, 2]

    def test_total_time(self, platform):
        trace = RunTrace()
        records = [make_record(platform) for _ in range(4)]
        for record in records:
            trace.append(record)
        assert trace.total_time() == pytest.approx(
            sum(r.time for r in records)
        )

    def test_records_for_kernel(self, platform):
        trace = RunTrace()
        trace.append(make_record(platform, kernel="MaxFlops.MaxFlops"))
        trace.append(make_record(platform, kernel="Sort.BottomScan"))
        assert len(trace.records_for_kernel("Sort.BottomScan")) == 1

    def test_power_segments(self, platform):
        trace = RunTrace()
        record = make_record(platform)
        trace.append(record)
        segments = trace.power_segments()
        assert segments == ((record.time, record.power.card),)


class TestResidency:
    def test_fractions_sum_to_one(self, platform):
        trace = RunTrace()
        base = platform.baseline_config()
        for f_mem_mhz in (1375, 925, 925, 775):
            trace.append(make_record(
                platform, config=base.replace(f_mem=f_mem_mhz * MHZ)
            ))
        table = trace.f_mem_residency()
        assert sum(table.fractions.values()) == pytest.approx(1.0)

    def test_residency_is_time_weighted(self, platform):
        trace = RunTrace()
        base = platform.baseline_config()
        slow = base.replace(f_cu=300 * MHZ)
        trace.append(make_record(platform, config=base))
        trace.append(make_record(platform, config=slow))
        table = trace.f_cu_residency()
        # The slow launch takes ~3x longer, so its residency dominates.
        assert table.fraction_at(300 * MHZ) > table.fraction_at(1 * GHZ)

    def test_dominant_value(self, platform):
        trace = RunTrace()
        base = platform.baseline_config()
        for __ in range(3):
            trace.append(make_record(platform, config=base))
        trace.append(make_record(platform,
                                 config=base.replace(n_cu=16)))
        assert trace.cu_residency().dominant_value() == 32

    def test_unvisited_value_is_zero(self, platform):
        trace = RunTrace()
        trace.append(make_record(platform))
        assert trace.f_mem_residency().fraction_at(475 * MHZ) == 0.0

    def test_empty_trace_raises(self):
        trace = RunTrace()
        with pytest.raises(AnalysisError):
            trace.f_mem_residency()

    def test_empty_residency_table_dominant_raises(self):
        table = ResidencyTable(tunable="x", fractions={})
        with pytest.raises(AnalysisError):
            table.dominant_value()
