"""Unit tests for the memory-bus voltage-scaling extension."""

import dataclasses

import pytest

from repro.errors import CalibrationError
from repro.memory.power import MemoryPowerModel
from repro.platform.calibration import default_calibration
from repro.platform.hd7970 import make_hd7970_platform
from repro.units import MHZ
from repro.workloads.registry import get_kernel

F_MAX = 1375 * MHZ
F_MIN = 475 * MHZ


def scaled_model() -> MemoryPowerModel:
    calibration = dataclasses.replace(
        default_calibration(), memory_voltage_scaling=True
    )
    return calibration.memory_power_model()


def fixed_model() -> MemoryPowerModel:
    return default_calibration().memory_power_model()


class TestBusVoltage:
    def test_fixed_model_holds_voltage(self):
        model = fixed_model()
        assert model.bus_voltage(F_MIN) == model.bus_voltage(F_MAX)

    def test_scaled_model_lowers_voltage_with_frequency(self):
        model = scaled_model()
        assert model.bus_voltage(F_MIN) < model.bus_voltage(F_MAX)

    def test_voltage_endpoints(self):
        model = scaled_model()
        assert model.bus_voltage(F_MAX) == pytest.approx(model.bus_voltage_max)
        assert model.bus_voltage(F_MIN) == pytest.approx(
            model.bus_voltage_min, abs=0.01
        )

    def test_voltage_monotone(self):
        model = scaled_model()
        freqs = [f * MHZ for f in (475, 625, 775, 925, 1075, 1225, 1375)]
        volts = [model.bus_voltage(f) for f in freqs]
        assert volts == sorted(volts)

    def test_invalid_voltage_range_rejected(self):
        with pytest.raises(CalibrationError):
            dataclasses.replace(
                fixed_model(), bus_voltage_min=2.0, bus_voltage_max=1.6
            )


class TestPowerEffect:
    def test_no_effect_at_max_frequency(self):
        # At the top frequency the scaled voltage equals the fixed one.
        assert scaled_model().total_power(F_MAX, 100e9) == pytest.approx(
            fixed_model().total_power(F_MAX, 100e9)
        )

    def test_scaling_saves_power_at_low_frequency(self):
        # Section 7.2: "far more power savings ... if voltage scaling is
        # applied while lowering bus speeds".
        assert scaled_model().total_power(F_MIN, 50e9) < \
            fixed_model().total_power(F_MIN, 50e9)

    def test_saving_grows_as_bus_slows(self):
        scaled, fixed = scaled_model(), fixed_model()
        saving_mid = (fixed.total_power(925 * MHZ, 50e9)
                      - scaled.total_power(925 * MHZ, 50e9))
        saving_low = (fixed.total_power(F_MIN, 50e9)
                      - scaled.total_power(F_MIN, 50e9))
        assert saving_low > saving_mid > 0


class TestPlatformIntegration:
    def test_factory_flag(self):
        platform = make_hd7970_platform(memory_voltage_scaling=True)
        assert platform.calibration.memory_voltage_scaling

    def test_default_is_fixed_voltage(self):
        # The paper's platform cannot scale the bus voltage.
        assert not make_hd7970_platform().calibration.memory_voltage_scaling

    def test_scaled_platform_draws_less_at_low_bus(self):
        fixed = make_hd7970_platform()
        scaled = make_hd7970_platform(memory_voltage_scaling=True)
        spec = get_kernel("Sort.BottomScan").base
        config = fixed.baseline_config().replace(f_mem=F_MIN)
        assert scaled.run_kernel(spec, config).power.memory < \
            fixed.run_kernel(spec, config).power.memory

    def test_performance_unaffected(self):
        # Voltage scaling is a power knob only.
        fixed = make_hd7970_platform()
        scaled = make_hd7970_platform(memory_voltage_scaling=True)
        spec = get_kernel("Sort.BottomScan").base
        config = fixed.baseline_config().replace(f_mem=F_MIN)
        assert scaled.run_kernel(spec, config).time == \
            pytest.approx(fixed.run_kernel(spec, config).time)
