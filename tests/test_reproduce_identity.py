"""Reports are byte-identical in every reproduce execution mode.

The tentpole invariant of the pipeline scheduler: serial, parallel
(``--jobs N``) and warm-incremental (manifest-served) runs must emit
exactly the same report bytes — parallelism and caching are pure
accelerators, never observable in the output.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main


def run_reproduce(tmp_path, leg, extra):
    out = tmp_path / f"reports-{leg}"
    argv = ["reproduce", "--output", str(out),
            "--cache-dir", str(tmp_path / "store")] + extra
    assert main(argv) == 0
    return out


def report_bytes(directory):
    files = sorted(directory.glob("*.txt"))
    assert files, f"no reports in {directory}"
    return {path.name: path.read_bytes() for path in files}


class TestReproduceByteIdentity:
    @pytest.fixture(autouse=True)
    def _detach_after(self):
        from repro.platform.sweepcache import shared_cache
        yield
        shared_cache().detach_store()

    def test_serial_parallel_and_warm_are_identical(self, tmp_path, capsys):
        serial = run_reproduce(tmp_path, "serial", ["--jobs", "1"])
        parallel = run_reproduce(
            tmp_path, "parallel", ["--jobs", "4", "--no-incremental"])
        profile = tmp_path / "profile.json"
        warm = run_reproduce(
            tmp_path, "warm",
            ["--jobs", "0", "--profile-json", str(profile)])
        capsys.readouterr()

        baseline = report_bytes(serial)
        assert report_bytes(parallel) == baseline
        assert report_bytes(warm) == baseline
        assert len(baseline) == 26

        # The warm leg must have served every report node from the
        # manifest and executed nothing.
        nodes = json.loads(profile.read_text())["nodes"]
        by_status = {}
        for node in nodes:
            by_status.setdefault(node["status"], []).append(node["node"])
        assert len(by_status.get("manifest", [])) == 26
        assert "ran" not in by_status
        assert set(by_status.get("pruned", [])) == {"training", "evaluation"}

    def test_no_incremental_recomputes_despite_manifest(self, tmp_path,
                                                        capsys):
        run_reproduce(tmp_path, "first", ["--jobs", "1"])
        profile = tmp_path / "p2.json"
        run_reproduce(
            tmp_path, "second",
            ["--jobs", "1", "--no-incremental",
             "--profile-json", str(profile)])
        capsys.readouterr()
        nodes = json.loads(profile.read_text())["nodes"]
        assert all(node["status"] == "ran" for node in nodes)
