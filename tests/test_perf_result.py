"""Unit tests for :mod:`repro.perf.result` containers."""

import pytest

from repro.gpu.config import HardwareConfig
from repro.perf.result import PowerSample, TimeBreakdown
from repro.units import GHZ, MHZ
from repro.workloads.registry import get_kernel


class TestTimeBreakdown:
    def test_total_composition(self):
        breakdown = TimeBreakdown(compute=2.0e-3, memory=3.0e-3,
                                  overlap_residue=0.1e-3,
                                  launch_overhead=0.02e-3)
        assert breakdown.total == pytest.approx(3.12e-3)

    def test_compute_bound_flag(self):
        assert TimeBreakdown(compute=2.0, memory=1.0, overlap_residue=0,
                             launch_overhead=0).compute_bound
        assert not TimeBreakdown(compute=1.0, memory=2.0, overlap_residue=0,
                                 launch_overhead=0).compute_bound

    def test_overhead_dominated_kernel(self):
        # The SRAD.Prepare shape: overhead bigger than the work.
        breakdown = TimeBreakdown(compute=5e-6, memory=3e-6,
                                  overlap_residue=0.1e-6,
                                  launch_overhead=60e-6)
        assert breakdown.launch_overhead > 0.8 * breakdown.total


class TestPowerSample:
    def test_card_is_sum(self):
        sample = PowerSample(gpu=90.0, memory=40.0, other=14.0)
        assert sample.card == pytest.approx(144.0)


class TestKernelRunResult:
    def test_energy_and_performance(self, platform):
        spec = get_kernel("Stencil.Stencil2D").base
        result = platform.run_kernel(spec, platform.baseline_config())
        assert result.energy == pytest.approx(result.power.card * result.time)
        assert result.performance == pytest.approx(1.0 / result.time)

    def test_breakdown_total_matches_time(self, platform):
        # With noise disabled, reported time equals the model breakdown.
        spec = get_kernel("Stencil.Stencil2D").base
        result = platform.run_kernel(spec, platform.baseline_config())
        assert result.time == pytest.approx(result.breakdown.total)

    def test_bandwidth_limit_label(self, platform):
        spec = get_kernel("DeviceMemory.DeviceMemory").base
        result = platform.run_kernel(spec, platform.baseline_config())
        assert result.bandwidth_limit in ("efficiency", "mlp", "crossing",
                                          "none")

    def test_result_is_immutable(self, platform):
        spec = get_kernel("Stencil.Stencil2D").base
        result = platform.run_kernel(spec, platform.baseline_config())
        with pytest.raises(Exception):
            result.time = 0.0
