"""The stateless launch-keyed noise RNG: determinism under any execution.

The tentpole contract: a launch's noise multiplier is a pure function of
``(platform seed, kernel spec, iteration, config)``. These tests pin the
consequences — draws are bitwise reproducible regardless of launch order,
interleaving, thread fan-out, or sweep-cache state — plus the documented
clamp floor and its clip accounting.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.platform.hd7970 import make_hd7970_platform
from repro.platform.noise import NOISE_FLOOR, LaunchKeyedNoise, spec_entropy
from repro.platform.sweepcache import SweepCache
from repro.runtime.simulator import ApplicationRunner
from repro.workloads.registry import all_kernels, get_application

SPEC = all_kernels()[0].base
OTHER = all_kernels()[1].base


class TestLaunchKeyedNoise:
    def test_spec_entropy_is_stable_and_distinct(self):
        assert spec_entropy(SPEC) == spec_entropy(SPEC)
        assert spec_entropy(SPEC) != spec_entropy(OTHER)

    def test_draws_are_pure_functions_of_the_key(self):
        a = LaunchKeyedNoise(0.05, seed=3, grid_size=10)
        b = LaunchKeyedNoise(0.05, seed=3, grid_size=10)
        m_a, _ = a.multipliers_for(SPEC, 4)
        m_b, _ = b.multipliers_for(SPEC, 4)
        np.testing.assert_array_equal(m_a, m_b)

    def test_each_key_component_matters(self):
        model = LaunchKeyedNoise(0.05, seed=3, grid_size=10)
        base, _ = model.multipliers_for(SPEC, 0)
        other_iter, _ = model.multipliers_for(SPEC, 1)
        other_spec, _ = model.multipliers_for(OTHER, 0)
        other_seed, _ = LaunchKeyedNoise(0.05, 4, 10).multipliers_for(SPEC, 0)
        assert np.any(base != other_iter)
        assert np.any(base != other_spec)
        assert np.any(base != other_seed)

    def test_scalar_indexes_the_batch_vector(self):
        model = LaunchKeyedNoise(0.05, seed=3, grid_size=10)
        vector, clipped = model.multipliers_for(SPEC, 2)
        for i in range(10):
            value, clip = model.multiplier_at(SPEC, 2, i)
            assert value == vector[i]
            assert clip == clipped[i]

    def test_clamp_floor(self):
        # Heavy noise: some raw draws land below the floor and get clamped.
        model = LaunchKeyedNoise(2.0, seed=0, grid_size=2048)
        multipliers, clipped = model.multipliers_for(SPEC, 0)
        assert np.any(clipped)
        assert np.all(multipliers >= NOISE_FLOOR)
        assert np.all(multipliers[clipped] == NOISE_FLOOR)

    def test_negative_iteration_rejected(self):
        model = LaunchKeyedNoise(0.05, seed=3, grid_size=10)
        with pytest.raises(ValueError):
            model.multipliers_for(SPEC, -1)


class TestExecutionOrderInvariance:
    def test_launch_order_does_not_matter(self):
        launches = [
            (spec, config, iteration)
            for spec in (SPEC, OTHER)
            for iteration in (0, 1, 2)
            for config in tuple(make_hd7970_platform().config_space)[::97]
        ]
        forward = make_hd7970_platform(noise_std_fraction=0.05, seed=9)
        reverse = make_hd7970_platform(noise_std_fraction=0.05, seed=9)
        times_fwd = {
            key: forward.run_kernel(key[0], key[1], iteration=key[2]).time
            for key in launches
        }
        times_rev = {
            key: reverse.run_kernel(key[0], key[1], iteration=key[2]).time
            for key in reversed(launches)
        }
        assert times_fwd == times_rev

    def test_interleaving_scalar_and_batch_does_not_matter(self):
        scalar_first = make_hd7970_platform(noise_std_fraction=0.05, seed=9)
        batch_first = make_hd7970_platform(noise_std_fraction=0.05, seed=9)
        config = scalar_first.baseline_config()

        t_scalar = scalar_first.run_kernel(SPEC, config).time
        b_after = scalar_first.run_kernel_batch(SPEC)

        b_first = batch_first.run_kernel_batch(SPEC)
        t_after = batch_first.run_kernel(SPEC, config).time

        assert t_scalar == t_after
        np.testing.assert_array_equal(b_after.time, b_first.time)

    def test_jobs_fanout_does_not_matter(self):
        applications = [get_application("MaxFlops"), get_application("BPT")]

        def run_matrix(jobs):
            platform = make_hd7970_platform(noise_std_fraction=0.05, seed=9)
            runner = ApplicationRunner(platform)
            from repro.core.baseline import BaselinePolicy
            return runner.run_matrix(
                applications,
                policy_factories=[
                    lambda: BaselinePolicy(platform.config_space)
                ],
                jobs=jobs,
            )

        serial = run_matrix(1)
        fanned = run_matrix(4)
        for app in serial:
            for policy in serial[app]:
                a = serial[app][policy].metrics
                b = fanned[app][policy].metrics
                assert a.time == b.time
                assert a.energy == b.energy

    def test_cache_state_does_not_matter(self):
        # Miss path: a fresh cache computes the clean surface.
        cold = make_hd7970_platform(noise_std_fraction=0.05, seed=9)
        cold_cache = SweepCache()
        miss = cold.grid_sweep(SPEC, cache=cold_cache, iteration=1)
        assert cold_cache.stats().memory == (0, 1)

        # Hit path: a pre-warmed cache serves the same clean surface.
        warm = make_hd7970_platform(noise_std_fraction=0.05, seed=9)
        warm_cache = SweepCache()
        warm.grid_sweep(SPEC, cache=warm_cache, iteration=0)
        hit = warm.grid_sweep(SPEC, cache=warm_cache, iteration=1)
        assert warm_cache.stats().memory == (1, 1)

        np.testing.assert_array_equal(miss.time, hit.time)
        np.testing.assert_array_equal(miss.energy, hit.energy)


class TestClipAccounting:
    def test_scalar_and_batch_count_the_same_clips(self):
        scalar = make_hd7970_platform(noise_std_fraction=2.0, seed=1)
        batch = make_hd7970_platform(noise_std_fraction=2.0, seed=1)
        configs = tuple(scalar.config_space)
        for config in configs:
            scalar.run_kernel(SPEC, config)
        batch.run_kernel_batch(SPEC, configs)
        assert scalar.noise_clip_count == batch.noise_clip_count > 0

    def test_clips_feed_the_telemetry_counter(self):
        from repro.telemetry import Telemetry

        telemetry = Telemetry()
        platform = make_hd7970_platform(noise_std_fraction=2.0, seed=1,
                                        telemetry=telemetry)
        platform.run_kernel_batch(SPEC)
        counter = telemetry.metrics.counter("noise_floor_clips_total")
        assert counter.value(kernel=SPEC.name) == platform.noise_clip_count
        assert platform.noise_clip_count > 0

    def test_clean_platform_never_clips(self):
        platform = make_hd7970_platform()
        platform.run_kernel(SPEC, platform.baseline_config())
        platform.run_kernel_batch(SPEC)
        assert platform.noise_clip_count == 0
