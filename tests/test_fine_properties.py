"""Property-based tests for the FG tuner on synthetic environments.

The tuner is driven against randomly generated but *structured* feedback
surfaces (monotone per-tunable responses with a bottleneck structure, like
the real max(compute, memory) surface) and must uphold its invariants:
configurations stay on the grid, the search terminates, the settled point
never loses more than the tolerance band vs the surface's best reachable
feedback, and a converged state holds steady.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.fine import FineGrainState, FineGrainTuner
from repro.gpu.architecture import HD7970
from repro.gpu.config import ConfigSpace, HardwareConfig
from repro.sensitivity.binning import Bin
from repro.units import GHZ, MHZ

SPACE = ConfigSpace(HD7970)
TOP = SPACE.max_config()
ALL_MED = {"n_cu": Bin.MED, "f_cu": Bin.MED, "f_mem": Bin.MED}


def bottleneck_environment(cu_need, f_cu_need, f_mem_need):
    """Feedback = min of per-tunable supply/need ratios (capped at 1).

    Below its need a tunable throttles feedback proportionally; above it,
    extra supply is free — the canonical bottleneck surface.
    """
    def feedback(config: HardwareConfig) -> float:
        terms = [
            min(1.0, config.n_cu / cu_need),
            min(1.0, config.f_cu / f_cu_need),
            min(1.0, config.f_mem / f_mem_need),
        ]
        return 100.0 * min(terms)

    return feedback


@st.composite
def environments(draw):
    cu_need = draw(st.sampled_from([4, 8, 16, 24, 32]))
    f_cu_need = draw(st.sampled_from([300, 500, 700, 1000])) * MHZ
    f_mem_need = draw(st.sampled_from([475, 775, 1075, 1375])) * MHZ
    return bottleneck_environment(cu_need, f_cu_need, f_mem_need)


class TestBottleneckSurfaces:
    @settings(deadline=None, max_examples=40)
    @given(env=environments())
    def test_stays_on_grid_and_terminates(self, env):
        tuner = FineGrainTuner(SPACE, tolerance=0.01)
        state = FineGrainState()
        config = TOP
        for _ in range(60):
            config = tuner.propose(state, config, env(config), ALL_MED)
            assert config in SPACE

    @settings(deadline=None, max_examples=40)
    @given(env=environments())
    def test_never_settles_below_tolerance_of_peak(self, env):
        tuner = FineGrainTuner(SPACE, tolerance=0.01)
        state = FineGrainState()
        config = TOP
        for _ in range(60):
            config = tuner.propose(state, config, env(config), ALL_MED)
        # Starting from TOP, peak feedback is env(TOP) = 100; the settled
        # point must hold it within a small multiple of the tolerance
        # (reverts restore the pre-step config exactly, so only the final
        # resting point matters).
        assert env(config) >= 100.0 * (1 - 0.015)

    @settings(deadline=None, max_examples=40)
    @given(env=environments(), seed=st.integers(min_value=0, max_value=9))
    def test_settles_to_a_fixed_point(self, env, seed):
        tuner = FineGrainTuner(SPACE, tolerance=0.01)
        state = FineGrainState()
        config = TOP
        for _ in range(80):
            config = tuner.propose(state, config, env(config), ALL_MED)
        # After the budget, proposals must stop moving (fixed point or
        # converged-best hold).
        settled = tuner.propose(state, config, env(config), ALL_MED)
        again = tuner.propose(state, settled, env(settled), ALL_MED)
        assert settled == again

    @settings(deadline=None, max_examples=25)
    @given(env=environments())
    def test_trims_genuinely_free_capacity(self, env):
        # Whatever the bottleneck, at least one tunable usually has slack;
        # the tuner must end strictly below TOP unless everything is
        # needed at maximum.
        tuner = FineGrainTuner(SPACE, tolerance=0.01)
        state = FineGrainState()
        config = TOP
        for _ in range(60):
            config = tuner.propose(state, config, env(config), ALL_MED)
        needs_everything = (
            env(TOP.replace(n_cu=28)) < 99.0
            and env(SPACE.step_f_cu(TOP, -1)) < 99.0
            and env(SPACE.step_f_mem(TOP, -1)) < 99.0
        )
        if not needs_everything:
            assert config != TOP


class TestRecoverySurfaces:
    @settings(deadline=None, max_examples=30)
    @given(
        start_mem=st.sampled_from([475, 625, 775, 925]),
        need_mem=st.sampled_from([1075, 1225, 1375]),
    )
    def test_climbs_out_of_memory_starvation(self, start_mem, need_mem):
        # Start below the kernel's memory need (as after a bad CG jump):
        # the tuner must climb the bus back to (at least) the need.
        env = bottleneck_environment(4, 300 * MHZ, need_mem * MHZ)
        tuner = FineGrainTuner(SPACE, tolerance=0.01)
        state = FineGrainState()
        config = TOP.replace(f_mem=start_mem * MHZ)
        for _ in range(40):
            config = tuner.propose(state, config, env(config), ALL_MED)
        assert config.f_mem >= need_mem * MHZ * 0.999
