"""Tests for :mod:`repro.runtime.measurement` (the Section 6 rig)."""

import pytest

from repro.core.baseline import BaselinePolicy
from repro.errors import AnalysisError
from repro.runtime.measurement import MeasuredRunner
from repro.runtime.simulator import ApplicationRunner
from repro.workloads.registry import get_application


@pytest.fixture(scope="module")
def measured_runner(platform):
    return MeasuredRunner(ApplicationRunner(platform))


class TestMeasurement:
    def test_daq_energy_close_to_analytic(self, measured_runner, space):
        # At 1 kHz over a run of tens of milliseconds, the integration
        # error stays within a few percent.
        measured = measured_runner.measure(
            get_application("CoMD"), BaselinePolicy(space)
        )
        assert abs(measured.measurement_error) < 0.05

    def test_high_rate_converges(self, platform, space):
        fast = MeasuredRunner(ApplicationRunner(platform),
                              sampling_frequency=100000.0)
        measured = fast.measure(get_application("Sort"), BaselinePolicy(space))
        assert abs(measured.measurement_error) < 0.005

    def test_measured_metrics_use_daq_energy(self, measured_runner, space):
        measured = measured_runner.measure(
            get_application("LUD"), BaselinePolicy(space)
        )
        metrics = measured.measured_metrics()
        assert metrics.energy == pytest.approx(measured.measured_energy)
        assert metrics.time == pytest.approx(measured.run.metrics.time)

    def test_noise_averaging_recovers_mean(self, platform, space):
        noisy = MeasuredRunner(ApplicationRunner(platform),
                               noise_std=5.0, seed=3)
        clean = MeasuredRunner(ApplicationRunner(platform))
        app = get_application("Stencil")
        averaged, runs = noisy.measure_averaged(
            app, BaselinePolicy(space), repeats=5
        )
        reference = clean.measure(app, BaselinePolicy(space))
        assert len(runs) == 5
        assert averaged.energy == pytest.approx(
            reference.measured_energy, rel=0.03
        )

    def test_zero_repeats_rejected(self, measured_runner, space):
        with pytest.raises(AnalysisError):
            measured_runner.measure_averaged(
                get_application("Sort"), BaselinePolicy(space), repeats=0
            )

    def test_distinct_seeds_differ(self, platform, space):
        noisy = MeasuredRunner(ApplicationRunner(platform), noise_std=5.0)
        app = get_application("Sort")
        a = noisy.measure(app, BaselinePolicy(space), seed=1)
        b = noisy.measure(app, BaselinePolicy(space), seed=2)
        assert a.measured_energy != b.measured_energy
