"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults_to_harmonia(self):
        args = build_parser().parse_args(["run", "CoMD"])
        assert args.policy == "harmonia"

    def test_bad_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "CoMD", "--policy", "magic"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "14 applications" in out
        assert "Graph500" in out

    def test_run(self, capsys):
        assert main(["run", "XSBench", "--policy", "cg-only"]) == 0
        out = capsys.readouterr().out
        assert "XSBench" in out
        assert "ED2" in out
        assert "residency" in out

    def test_run_unknown_app(self, capsys):
        assert main(["run", "NoSuchApp"]) == 2
        assert "unknown application" in capsys.readouterr().err

    def test_sweep(self, capsys):
        assert main(["sweep", "SRAD.Prepare"]) == 0
        out = capsys.readouterr().out
        assert "min ED2" in out

    def test_sweep_unknown_kernel(self, capsys):
        assert main(["sweep", "No.Such"]) == 2
        assert "unknown kernel" in capsys.readouterr().err

    def test_figure_table1(self, capsys):
        assert main(["figure", "table1"]) == 0
        assert "DPM2" in capsys.readouterr().out

    def test_figure_fig07(self, capsys):
        assert main(["figure", "fig07"]) == 0
        assert "occupancy" in capsys.readouterr().out

    def test_figure_fig05(self, capsys):
        assert main(["figure", "fig05"]) == 0
        assert "Figure 5" in capsys.readouterr().out

    def test_figure_unknown(self, capsys):
        assert main(["figure", "fig99"]) == 2
        assert "unknown figure" in capsys.readouterr().err


class TestReproduce:
    def test_reproduce_writes_reports(self, tmp_path, capsys):
        assert main(["reproduce", "--output", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "reports written" in out
        written = list(tmp_path.glob("*.txt"))
        assert len(written) >= 20
        # The headline figure must be among them, with its geomeans.
        fig10 = (tmp_path / "fig10_ed2.txt").read_text()
        assert "geomean" in fig10
