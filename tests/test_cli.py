"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults_to_harmonia(self):
        args = build_parser().parse_args(["run", "CoMD"])
        assert args.policy == "harmonia"

    def test_bad_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "CoMD", "--policy", "magic"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "14 applications" in out
        assert "Graph500" in out

    def test_run(self, capsys):
        assert main(["run", "XSBench", "--policy", "cg-only"]) == 0
        out = capsys.readouterr().out
        assert "XSBench" in out
        assert "ED2" in out
        assert "residency" in out

    def test_run_unknown_app(self, capsys):
        assert main(["run", "NoSuchApp"]) == 2
        assert "unknown application" in capsys.readouterr().err

    def test_sweep(self, capsys):
        assert main(["sweep", "SRAD.Prepare"]) == 0
        out = capsys.readouterr().out
        assert "min ED2" in out

    def test_sweep_unknown_kernel(self, capsys):
        assert main(["sweep", "No.Such"]) == 2
        assert "unknown kernel" in capsys.readouterr().err

    def test_figure_table1(self, capsys):
        assert main(["figure", "table1"]) == 0
        assert "DPM2" in capsys.readouterr().out

    def test_figure_fig07(self, capsys):
        assert main(["figure", "fig07"]) == 0
        assert "occupancy" in capsys.readouterr().out

    def test_figure_fig05(self, capsys):
        assert main(["figure", "fig05"]) == 0
        assert "Figure 5" in capsys.readouterr().out

    def test_figure_unknown(self, capsys):
        assert main(["figure", "fig99"]) == 2
        assert "unknown figure" in capsys.readouterr().err


class TestReproduce:
    def test_reproduce_writes_reports(self, tmp_path, capsys):
        assert main(["reproduce", "--output", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "reports written" in out
        assert "sweep cache:" in out  # the cache-effectiveness summary
        written = list(tmp_path.glob("*.txt"))
        assert len(written) >= 20
        # The headline figure must be among them, with its geomeans.
        fig10 = (tmp_path / "fig10_ed2.txt").read_text()
        assert "geomean" in fig10


class TestSweepStoreFlags:
    """--cache-dir / --no-cache and the telemetry-report --metrics line."""

    @pytest.fixture(autouse=True)
    def _detach_after(self):
        from repro.platform.sweepcache import shared_cache
        yield
        shared_cache().detach_store()

    def test_cache_dir_persists_grid_records(self, tmp_path, capsys):
        from repro.platform.sweepcache import shared_cache
        shared_cache().clear()  # cold memory tier, like a fresh process
        store_dir = tmp_path / "store"
        assert main(["sweep", "SRAD.Prepare",
                     "--cache-dir", str(store_dir)]) == 0
        records = list(store_dir.glob("grid-*.npz"))
        assert len(records) == 1

    def test_no_cache_disables_the_store(self, tmp_path, capsys):
        from repro.platform.sweepcache import shared_cache
        assert main(["sweep", "SRAD.Prepare", "--no-cache"]) == 0
        assert shared_cache().store is None

    def test_unusable_cache_dir_degrades_with_warning(self, tmp_path,
                                                      capsys):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("occupied")
        assert main(["sweep", "SRAD.Prepare",
                     "--cache-dir", str(blocker)]) == 0
        captured = capsys.readouterr()
        assert "sweep store disabled" in captured.err
        assert "min ED2" in captured.out

    def test_second_invocation_warm_starts(self, tmp_path, capsys):
        from repro.platform.sweepcache import shared_cache
        store_dir = tmp_path / "store"
        shared_cache().clear()  # cold start: compute + write through
        assert main(["sweep", "SRAD.Prepare",
                     "--cache-dir", str(store_dir)]) == 0
        # Simulate a fresh process: empty the in-memory tier.
        shared_cache().clear()
        before = shared_cache().stats().store
        assert main(["sweep", "SRAD.Prepare",
                     "--cache-dir", str(store_dir)]) == 0
        after = shared_cache().stats().store
        assert after.hits == before.hits + 1

    def test_telemetry_report_metrics_line(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        metrics = tmp_path / "metrics.json"
        assert main(["run", "XSBench", "--policy", "cg-only",
                     "--trace", str(trace),
                     "--metrics-out", str(metrics)]) == 0
        capsys.readouterr()
        assert main(["telemetry-report", str(trace),
                     "--metrics", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "sweep cache:" in out
        assert "served without recompute" in out

    def test_telemetry_report_metrics_unreadable(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        assert main(["run", "XSBench", "--policy", "cg-only",
                     "--trace", str(trace)]) == 0
        capsys.readouterr()
        assert main(["telemetry-report", str(trace),
                     "--metrics", str(tmp_path / "absent.json")]) == 2
        assert "unreadable metrics file" in capsys.readouterr().err


def _ledger_module():
    import sys
    from pathlib import Path

    repo_root = Path(__file__).resolve().parent.parent
    if str(repo_root) not in sys.path:
        sys.path.insert(0, str(repo_root))
    from benchmarks import ledger
    return ledger


class TestObservabilityCli:
    """Traced reproduce, span/metrics reports, and bench-report."""

    @pytest.fixture(autouse=True)
    def _detach_after(self):
        from repro.platform.sweepcache import shared_cache
        yield
        shared_cache().detach_store()

    def test_traced_reproduce_nests_everything(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        assert main(["reproduce", "--output", str(tmp_path / "out"),
                     "--cache-dir", str(tmp_path / "cache"),
                     "--trace", str(trace),
                     "--metrics-out", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "span trace:" in out and "metrics written to" in out

        from repro.telemetry.spans import load_chrome_trace, span_tree
        records = load_chrome_trace(trace)
        (root,) = span_tree(records)  # a single tree covers the whole run
        assert root.record.name == "reproduce"
        names = {r.name for r in records}
        assert any(name.startswith("pipeline.") for name in names)

        # Spans double as the span report; metrics as Prometheus text.
        capsys.readouterr()
        assert main(["telemetry-report", "--spans", str(trace)]) == 0
        report = capsys.readouterr().out
        assert "critical path" in report.lower()
        assert "reproduce" in report
        assert main(["telemetry-report", "--metrics", str(metrics),
                     "--prometheus"]) == 0
        exposition = capsys.readouterr().out
        assert "# TYPE" in exposition
        assert "sweep_cache_hits_total" in exposition

    def test_telemetry_report_spans_missing_file(self, tmp_path, capsys):
        assert main(["telemetry-report",
                     "--spans", str(tmp_path / "gone.json")]) == 2
        assert "no such span trace" in capsys.readouterr().err

    def test_bench_report_on_committed_ledger(self, capsys):
        assert main(["bench-report"]) == 0
        out = capsys.readouterr().out
        assert "run(s)" in out
        assert "[gated]" in out

    def test_bench_report_empty_ledger_exits_2(self, tmp_path, capsys):
        assert main(["bench-report",
                     "--ledger", str(tmp_path / "none.jsonl")]) == 2
        assert "no entries" in capsys.readouterr().err

    def test_bench_report_check_gates_regressions(self, tmp_path, capsys):
        ledger = _ledger_module()
        path = tmp_path / "ledger.jsonl"
        for speedup in (30.0, 31.0, 29.5, 3.0):  # last run: 10x slower
            ledger.append_entry(path, ledger.LedgerEntry(
                bench="pipeline", recorded_at="2026-08-01T00:00:00+00:00",
                metrics={"warm_speedup": speedup}))
        assert main(["bench-report", "--ledger", str(path)]) == 0
        capsys.readouterr()
        assert main(["bench-report", "--ledger", str(path),
                     "--check"]) == 1
        assert "regression" in capsys.readouterr().out
