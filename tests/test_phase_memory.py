"""Unit tests for :class:`repro.core.monitor.PhaseMemory`."""

import pytest

from repro.core.monitor import PhaseMemory
from repro.errors import PolicyError
from repro.gpu.config import HardwareConfig
from repro.units import GHZ, MHZ

CONFIG_A = HardwareConfig(32, 1 * GHZ, 475 * MHZ)
CONFIG_B = HardwareConfig(16, 700 * MHZ, 1375 * MHZ)

PHASE_1 = (0.010, 0.002, 40.0, 0.14)
PHASE_2 = (0.025, 0.004, 40.0, 0.14)


class TestRecall:
    def test_empty_memory_recalls_nothing(self):
        memory = PhaseMemory()
        assert memory.recall("k", PHASE_1) is None

    def test_exact_match(self):
        memory = PhaseMemory()
        memory.remember("k", PHASE_1, CONFIG_A)
        assert memory.recall("k", PHASE_1) == CONFIG_A

    def test_fuzzy_match_within_threshold(self):
        memory = PhaseMemory(threshold=0.10)
        memory.remember("k", PHASE_1, CONFIG_A)
        near = (0.0105, 0.00205, 41.0, 0.14)  # each within 10%
        assert memory.recall("k", near) == CONFIG_A

    def test_no_match_beyond_threshold(self):
        memory = PhaseMemory(threshold=0.10)
        memory.remember("k", PHASE_1, CONFIG_A)
        assert memory.recall("k", PHASE_2) is None

    def test_distinct_phases_stored_separately(self):
        memory = PhaseMemory()
        memory.remember("k", PHASE_1, CONFIG_A)
        memory.remember("k", PHASE_2, CONFIG_B)
        assert memory.recall("k", PHASE_1) == CONFIG_A
        assert memory.recall("k", PHASE_2) == CONFIG_B
        assert memory.phase_count("k") == 2

    def test_update_in_place(self):
        memory = PhaseMemory()
        memory.remember("k", PHASE_1, CONFIG_A)
        memory.remember("k", PHASE_1, CONFIG_B)
        assert memory.recall("k", PHASE_1) == CONFIG_B
        assert memory.phase_count("k") == 1

    def test_kernels_independent(self):
        memory = PhaseMemory()
        memory.remember("a", PHASE_1, CONFIG_A)
        assert memory.recall("b", PHASE_1) is None

    def test_reset(self):
        memory = PhaseMemory()
        memory.remember("k", PHASE_1, CONFIG_A)
        memory.reset()
        assert memory.recall("k", PHASE_1) is None
        assert memory.phase_count("k") == 0

    def test_bad_threshold(self):
        with pytest.raises(PolicyError):
            PhaseMemory(threshold=0.0)


class TestPolicyIntegration:
    def test_recall_fires_on_recurring_phases(self, context):
        from repro.core.harmonia import HarmoniaPolicy
        from repro.runtime.simulator import ApplicationRunner
        from repro.workloads.application import Application
        from repro.workloads.registry import get_application

        base = get_application("Graph500")
        app = Application(name="Graph500x2", suite="Graph500",
                          kernels=base.kernels,
                          iterations=base.iterations * 2)
        training = context.training
        policy = HarmoniaPolicy(
            context.platform.config_space, training.compute,
            training.bandwidth,
        )
        ApplicationRunner(context.platform).run(app, policy,
                                                reset_policy=False)
        control = policy.control_state("Graph500.BottomStepUp")
        assert control.phase_recalls >= 1

    def test_memory_can_be_disabled(self, context):
        from repro.core.harmonia import HarmoniaPolicy
        training = context.training
        policy = HarmoniaPolicy(
            context.platform.config_space, training.compute,
            training.bandwidth, enable_phase_memory=False,
        )
        assert policy.phase_memory is None
