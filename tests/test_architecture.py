"""Unit tests for :mod:`repro.gpu.architecture` (paper Section 2.2)."""

import pytest

from repro.errors import ConfigurationError
from repro.gpu.architecture import HD7970
from repro.units import GHZ, MHZ


class TestSection22Facts:
    """Architectural facts stated in the paper."""

    def test_32_compute_units(self):
        assert HD7970.max_compute_units == 32

    def test_four_simds_per_cu(self):
        assert HD7970.simds_per_cu == 4

    def test_16_pes_per_simd(self):
        assert HD7970.lanes_per_simd == 16

    def test_64_lanes_per_cu(self):
        assert HD7970.lanes_per_cu == 64

    def test_wavefront_width(self):
        assert HD7970.wavefront_width == 64

    def test_wave_issues_over_four_cycles(self):
        assert HD7970.cycles_per_valu_inst == 4

    def test_six_memory_controllers_64bit(self):
        assert HD7970.memory_controllers == 6
        assert HD7970.bus_width_bits_per_mc == 64

    def test_64kb_lds(self):
        assert HD7970.lds_per_cu == 64 * 1024

    def test_16kb_l1(self):
        assert HD7970.l1_per_cu == 16 * 1024

    def test_768kb_l2(self):
        assert HD7970.l2_size == 768 * 1024

    def test_vgpr_normalization_base(self):
        # Table 2: NormVGPR normalized by max 256.
        assert HD7970.vgprs_per_simd == 256

    def test_sgpr_normalization_base(self):
        # Table 2: NormSGPR normalized by max 102.
        assert HD7970.sgprs_per_wave_file == 102

    def test_ten_waves_per_simd(self):
        assert HD7970.max_waves_per_simd == 10
        assert HD7970.max_waves_per_cu == 40


class TestThroughput:
    def test_peak_flops_at_boost(self):
        # 32 CU x 64 lanes x 1 GHz = 2048 G issue slots/s; counting FMAC as
        # two ops gives the paper's ~4096 GFLOPS.
        issue = HD7970.peak_flops(32, 1 * GHZ)
        assert issue == pytest.approx(2048e9)
        assert 2 * issue == pytest.approx(4096e9)

    def test_peak_bandwidth_at_max(self):
        # Equation 2 at 1375 MHz: 264 GB/s (Section 2.2).
        assert HD7970.peak_memory_bandwidth(1375 * MHZ) == pytest.approx(264e9)

    def test_peak_bandwidth_at_min(self):
        # Section 3.1: 90 GB/s at 475 MHz.
        bw = HD7970.peak_memory_bandwidth(475 * MHZ)
        assert bw == pytest.approx(91.2e9)

    def test_bandwidth_step_is_about_30gb(self):
        # Section 3.1: steps of 30 GB/s per 150 MHz.
        step = (HD7970.peak_memory_bandwidth(625 * MHZ)
                - HD7970.peak_memory_bandwidth(475 * MHZ))
        assert step == pytest.approx(28.8e9)

    def test_bandwidth_rejects_non_positive_frequency(self):
        with pytest.raises(ConfigurationError):
            HD7970.peak_memory_bandwidth(0.0)

    def test_bus_width_bytes(self):
        assert HD7970.bus_width_bytes() == pytest.approx(48.0)


class TestGrids:
    def test_cu_counts_4_to_32_step_4(self):
        assert HD7970.cu_counts() == (4, 8, 12, 16, 20, 24, 28, 32)

    def test_compute_frequencies_300_to_1000_step_100(self):
        freqs = [f / MHZ for f in HD7970.compute_frequencies]
        assert freqs == [300, 400, 500, 600, 700, 800, 900, 1000]

    def test_memory_frequencies_475_to_1375_step_150(self):
        freqs = [f / MHZ for f in HD7970.memory_bus_frequencies]
        assert freqs == [475, 625, 775, 925, 1075, 1225, 1375]
