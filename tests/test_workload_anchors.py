"""Per-kernel sanity anchors across the whole workload set.

Parametrized over all 25 kernels: every kernel must be physically
plausible on the architecture (occupancy computable, baseline run sane)
and every application must show the boundedness its suite role implies.
"""

import pytest

from repro.gpu.occupancy import compute_occupancy
from repro.sensitivity.measurement import measure_sensitivities
from repro.workloads.registry import all_applications, all_kernels

KERNEL_NAMES = [k.name for k in all_kernels()]


@pytest.fixture(scope="module")
def kernels_by_name():
    return {k.name: k for k in all_kernels()}


class TestEveryKernel:
    @pytest.mark.parametrize("name", KERNEL_NAMES)
    def test_occupancy_computable(self, name, kernels_by_name, arch):
        spec = kernels_by_name[name].base
        result = compute_occupancy(
            arch,
            vgprs_per_workitem=spec.vgprs_per_workitem,
            sgprs_per_wave=spec.sgprs_per_wave,
            lds_bytes_per_workgroup=spec.lds_bytes_per_workgroup,
            workgroup_size=spec.workgroup_size,
        )
        assert 1 <= result.waves_per_simd <= arch.max_waves_per_simd

    @pytest.mark.parametrize("name", KERNEL_NAMES)
    def test_baseline_run_sane(self, name, kernels_by_name, platform):
        spec = kernels_by_name[name].base
        result = platform.run_kernel(spec, platform.baseline_config())
        # Millisecond-scale launches with plausible card power.
        assert 1e-5 < result.time < 0.2
        assert 50.0 < result.power.card < 250.0
        assert 0 <= result.counters.valu_busy <= 100

    @pytest.mark.parametrize("name", KERNEL_NAMES)
    def test_min_config_is_slower(self, name, kernels_by_name, platform):
        spec = kernels_by_name[name].base
        fast = platform.run_kernel(spec, platform.baseline_config())
        slow = platform.run_kernel(spec, platform.config_space.min_config())
        assert slow.time > fast.time

    @pytest.mark.parametrize("name", KERNEL_NAMES)
    def test_sensitivities_bounded(self, name, kernels_by_name, platform):
        measured = measure_sensitivities(platform, kernels_by_name[name].base)
        # Endpoint sensitivities live in a sane band: mild negatives are
        # possible (cache-thrash recovery), strong super-linearity is not.
        for value in (measured.cu, measured.f_cu, measured.bandwidth,
                      measured.compute):
            assert -0.5 < value < 1.3


class TestSuiteRoles:
    def test_stress_benchmarks_bracket_the_suite(self, platform):
        # MaxFlops has the highest compute sensitivity; DeviceMemory is
        # among the most bandwidth-sensitive.
        by_name = {k.name: k for k in all_kernels()}
        maxflops = measure_sensitivities(
            platform, by_name["MaxFlops.MaxFlops"].base
        )
        for kernel in all_kernels():
            m = measure_sensitivities(platform, kernel.base)
            assert m.compute <= maxflops.compute + 0.05

    def test_each_application_has_distinct_behaviour(self, platform):
        # The suite must span compute-bound, memory-bound, and mixed:
        bw_sens = {}
        for kernel in all_kernels():
            m = measure_sensitivities(platform, kernel.base)
            bw_sens[kernel.name] = m.bandwidth
        assert min(bw_sens.values()) < 0.1      # some bandwidth-insensitive
        assert max(bw_sens.values()) > 0.9      # some bandwidth-bound
        mids = [v for v in bw_sens.values() if 0.25 < v < 0.75]
        assert mids                              # and something in between

    def test_total_launch_counts(self):
        # The evaluation executes every kernel of every application.
        total = sum(app.total_launches() for app in all_applications())
        assert total > 500
