"""Property-based tests for the full Harmonia policy on random kernels.

Random (but valid) kernel descriptors and launch sequences drive the whole
controller stack against the real platform. Invariants:

* every requested configuration is on the grid,
* the policy never crashes on any observable kernel behaviour,
* a stable kernel's configuration reaches a fixed point,
* the settled configuration never performs much worse than baseline.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.harmonia import HarmoniaPolicy
from repro.core.policy import LaunchContext
from repro.perf.kernelspec import KernelSpec


@st.composite
def kernel_specs(draw):
    """Random valid kernel descriptors spanning the behaviour space."""
    return KernelSpec(
        name="Prop.Random",
        total_workitems=draw(st.sampled_from([1 << 16, 1 << 18, 1 << 20])),
        workgroup_size=draw(st.sampled_from([64, 128, 256])),
        valu_insts_per_item=draw(st.floats(min_value=5.0, max_value=4000.0)),
        vfetch_insts_per_item=draw(st.floats(min_value=0.0, max_value=20.0)),
        vwrite_insts_per_item=draw(st.floats(min_value=0.0, max_value=8.0)),
        bytes_per_fetch=draw(st.sampled_from([4.0, 8.0, 16.0])),
        bytes_per_write=draw(st.sampled_from([4.0, 8.0, 16.0])),
        vgprs_per_workitem=draw(st.sampled_from([16, 32, 66, 100])),
        sgprs_per_wave=draw(st.sampled_from([16, 32, 64])),
        branch_divergence=draw(st.floats(min_value=0.0, max_value=0.8)),
        l2_hit_rate=draw(st.floats(min_value=0.0, max_value=0.9)),
        l2_thrash_sensitivity=draw(st.floats(min_value=0.0, max_value=0.2)),
        outstanding_per_wave=draw(st.floats(min_value=1.0, max_value=6.0)),
        access_efficiency=draw(st.floats(min_value=0.4, max_value=0.95)),
    )


def drive(context, spec, iterations=25):
    """Run a fresh Harmonia policy on a single-kernel loop."""
    platform = context.platform
    training = context.training
    policy = HarmoniaPolicy(platform.config_space, training.compute,
                            training.bandwidth)
    configs = []
    results = []
    for iteration in range(iterations):
        launch = LaunchContext(kernel_name=spec.name, iteration=iteration,
                               spec=spec)
        config = policy.config_for(launch)
        assert config in platform.config_space
        result = platform.run_kernel(spec, config)
        policy.observe(launch, result)
        configs.append(config)
        results.append(result)
    return policy, configs, results


class TestRandomKernels:
    @settings(deadline=None, max_examples=25)
    @given(spec=kernel_specs())
    def test_never_crashes_and_stays_on_grid(self, context, spec):
        drive(context, spec, iterations=20)

    @settings(deadline=None, max_examples=20)
    @given(spec=kernel_specs())
    def test_stable_kernel_settles(self, context, spec):
        _, configs, _ = drive(context, spec, iterations=30)
        # The last stretch must be a fixed configuration.
        tail = configs[-4:]
        assert all(c == tail[0] for c in tail)

    @settings(deadline=None, max_examples=20)
    @given(spec=kernel_specs())
    def test_settled_performance_close_to_baseline(self, context, spec):
        platform = context.platform
        _, configs, results = drive(context, spec, iterations=30)
        baseline = platform.run_kernel(spec, platform.baseline_config())
        settled = results[-1]
        # The FG guard bounds the settled slowdown; allow generous slack
        # for the binning edge cases the paper itself documents.
        assert settled.time < baseline.time * 1.45

    @settings(deadline=None, max_examples=20)
    @given(spec=kernel_specs())
    def test_settled_power_not_above_baseline(self, context, spec):
        platform = context.platform
        _, _, results = drive(context, spec, iterations=30)
        baseline = platform.run_kernel(spec, platform.baseline_config())
        assert results[-1].power.card <= baseline.power.card * 1.01
