"""Tests for the Pitcairn portability platform."""

import pytest

from repro.gpu.architecture import PITCAIRN
from repro.gpu.config import ConfigSpace
from repro.platform import make_pitcairn_platform, pitcairn_calibration
from repro.units import GHZ, MHZ
from repro.workloads.registry import all_kernels, get_kernel


@pytest.fixture(scope="module")
def pitcairn():
    return make_pitcairn_platform()


class TestArchitecture:
    def test_geometry(self):
        assert PITCAIRN.max_compute_units == 20
        assert PITCAIRN.memory_controllers == 4
        assert PITCAIRN.cu_counts() == (4, 8, 12, 16, 20)

    def test_peak_bandwidth(self):
        assert PITCAIRN.peak_memory_bandwidth(1200 * MHZ) == \
            pytest.approx(153.6e9)

    def test_config_space_size(self):
        assert len(ConfigSpace(PITCAIRN)) == 5 * 8 * 6

    def test_same_cu_microarchitecture(self):
        # A GCN CU is a GCN CU: occupancy math carries over unchanged.
        assert PITCAIRN.vgprs_per_simd == 256
        assert PITCAIRN.cycles_per_valu_inst == 4


class TestPlatform:
    def test_baseline_is_its_own_boost(self, pitcairn):
        config = pitcairn.baseline_config()
        assert config.n_cu == 20
        assert config.f_cu == pytest.approx(1 * GHZ)
        assert config.f_mem == pytest.approx(1200 * MHZ)

    def test_every_kernel_runs(self, pitcairn):
        for kernel in all_kernels():
            result = pitcairn.run_kernel(kernel.base,
                                         pitcairn.baseline_config())
            assert result.time > 0
            assert 30.0 < result.power.card < 220.0

    def test_draws_less_than_hd7970(self, pitcairn, platform):
        # Fewer CUs and channels: the smaller part runs the same kernel
        # at lower board power.
        spec = get_kernel("MaxFlops.MaxFlops").base
        small = pitcairn.run_kernel(spec, pitcairn.baseline_config())
        large = platform.run_kernel(spec, platform.baseline_config())
        assert small.power.card < large.power.card

    def test_memory_bound_kernel_slower_on_narrower_bus(self, pitcairn,
                                                        platform):
        spec = get_kernel("DeviceMemory.DeviceMemory").base
        small = pitcairn.run_kernel(spec, pitcairn.baseline_config())
        large = platform.run_kernel(spec, platform.baseline_config())
        # 154 vs 264 GB/s: the streaming kernel pays roughly the ratio.
        assert small.time / large.time == pytest.approx(264 / 153.6,
                                                        rel=0.2)

    def test_calibration_scales_memory_power(self):
        from repro.platform import default_calibration
        pit = pitcairn_calibration()
        base = default_calibration()
        assert pit.mem_background_slope < base.mem_background_slope
        assert pit.cu_capacitance == base.cu_capacitance
