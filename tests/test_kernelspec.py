"""Unit and property tests for :mod:`repro.perf.kernelspec`."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import KernelSpecError
from repro.perf.kernelspec import KernelSpec


def spec(**overrides):
    defaults = dict(
        name="Test.Kernel",
        total_workitems=1 << 16,
        workgroup_size=256,
        valu_insts_per_item=100.0,
        vfetch_insts_per_item=4.0,
        vwrite_insts_per_item=2.0,
    )
    defaults.update(overrides)
    return KernelSpec(**defaults)


class TestValidation:
    def test_valid_spec_builds(self):
        assert spec().name == "Test.Kernel"

    @pytest.mark.parametrize("field,value", [
        ("total_workitems", 0),
        ("workgroup_size", 0),
        ("valu_insts_per_item", -1.0),
        ("vfetch_insts_per_item", -1.0),
        ("bytes_per_fetch", -1.0),
        ("branch_divergence", 1.0),
        ("branch_divergence", -0.1),
        ("l2_hit_rate", 1.5),
        ("l2_thrash_sensitivity", -0.1),
        ("outstanding_per_wave", 0.0),
        ("access_efficiency", 0.0),
        ("access_efficiency", 1.1),
        ("launch_overhead", -1e-6),
        ("overlap_inefficiency", 1.5),
    ])
    def test_rejects_bad_field(self, field, value):
        with pytest.raises(KernelSpecError):
            spec(**{field: value})

    def test_rejects_empty_kernel(self):
        with pytest.raises(KernelSpecError):
            spec(valu_insts_per_item=0.0, vfetch_insts_per_item=0.0,
                 vwrite_insts_per_item=0.0)


class TestDerivedQuantities:
    def test_lane_utilization(self):
        assert spec(branch_divergence=0.25).lane_utilization == \
            pytest.approx(0.75)

    def test_mem_insts(self):
        assert spec().mem_insts_per_item == pytest.approx(6.0)

    def test_footprint(self):
        s = spec(bytes_per_fetch=8.0, bytes_per_write=16.0)
        assert s.footprint_bytes_per_item == pytest.approx(4 * 8 + 2 * 16)

    def test_demanded_ops_per_byte(self):
        s = spec(l2_hit_rate=0.5, bytes_per_fetch=4.0, bytes_per_write=4.0)
        dram_bytes = (4 * 4 + 2 * 4) * 0.5
        assert s.demanded_ops_per_byte() == pytest.approx(100.0 / dram_bytes)

    def test_zero_traffic_kernel_has_finite_demand(self):
        s = spec(vfetch_insts_per_item=0.0, vwrite_insts_per_item=0.0)
        assert s.demanded_ops_per_byte() == pytest.approx(1.0e6)


class TestThrashModel:
    def test_full_cus_is_base_hit_rate(self):
        s = spec(l2_hit_rate=0.3, l2_thrash_sensitivity=0.2)
        assert s.effective_l2_hit_rate(32, 32) == pytest.approx(0.3)

    def test_fewer_cus_improve_hit_rate(self):
        s = spec(l2_hit_rate=0.3, l2_thrash_sensitivity=0.2)
        assert s.effective_l2_hit_rate(4, 32) > 0.3

    def test_hit_rate_capped(self):
        s = spec(l2_hit_rate=0.9, l2_thrash_sensitivity=1.0)
        assert s.effective_l2_hit_rate(4, 32) == pytest.approx(0.98)

    def test_no_thrash_sensitivity_means_constant(self):
        s = spec(l2_hit_rate=0.3)
        assert s.effective_l2_hit_rate(4, 32) == pytest.approx(0.3)

    def test_rejects_bad_cu_count(self):
        with pytest.raises(KernelSpecError):
            spec().effective_l2_hit_rate(0, 32)

    @given(n_cu=st.sampled_from([4, 8, 12, 16, 20, 24, 28, 32]),
           hit=st.floats(min_value=0.0, max_value=1.0),
           thrash=st.floats(min_value=0.0, max_value=1.0))
    def test_hit_rate_always_valid(self, n_cu, hit, thrash):
        s = spec(l2_hit_rate=hit, l2_thrash_sensitivity=thrash)
        assert 0.0 <= s.effective_l2_hit_rate(n_cu, 32) <= 0.98 + 1e-12


class TestEvolve:
    def test_evolve_changes_field(self):
        s = spec().evolve(branch_divergence=0.5)
        assert s.branch_divergence == pytest.approx(0.5)

    def test_evolve_preserves_others(self):
        s = spec().evolve(branch_divergence=0.5)
        assert s.total_workitems == spec().total_workitems

    def test_evolve_validates(self):
        with pytest.raises(KernelSpecError):
            spec().evolve(branch_divergence=1.5)

    def test_original_unchanged(self):
        original = spec()
        original.evolve(valu_insts_per_item=1.0)
        assert original.valu_insts_per_item == pytest.approx(100.0)

    def test_specs_are_hashable(self):
        assert len({spec(), spec()}) == 1
