"""Unit tests for :mod:`repro.perf.counters` (paper Table 2)."""

import pytest

from repro.perf.counters import PerfCounters


def counters(**overrides):
    defaults = dict(
        valu_utilization=90.0,
        valu_busy=60.0,
        mem_unit_busy=50.0,
        mem_unit_stalled=10.0,
        write_unit_stalled=5.0,
        ic_activity=0.4,
        norm_vgpr=0.25,
        norm_sgpr=0.2,
        valu_insts_millions=100.0,
        vfetch_insts_millions=10.0,
        vwrite_insts_millions=5.0,
    )
    defaults.update(overrides)
    return PerfCounters(**defaults)


class TestValidation:
    @pytest.mark.parametrize("field,value", [
        ("valu_utilization", -1.0),
        ("valu_busy", 101.0),
        ("mem_unit_busy", -5.0),
        ("ic_activity", 1.5),
        ("norm_vgpr", 1.5),
        ("norm_sgpr", -0.1),
    ])
    def test_out_of_range_rejected(self, field, value):
        with pytest.raises(ValueError):
            counters(**{field: value})

    def test_boundaries_accepted(self):
        counters(valu_busy=0.0, mem_unit_busy=100.0, ic_activity=1.0)


class TestCtoMIntensity:
    def test_equation_3(self):
        # C-to-M = (VALUBusy * VALUUtilization / 100) / MemUnitBusy, x100.
        c = counters(valu_busy=40.0, valu_utilization=90.0, mem_unit_busy=50.0)
        expected = (40.0 * 90.0 / 100.0) / 50.0 * 100.0
        assert c.compute_to_memory_intensity() == pytest.approx(expected)

    def test_normalized_to_100(self):
        c = counters(valu_busy=100.0, valu_utilization=100.0, mem_unit_busy=10.0)
        assert c.compute_to_memory_intensity() == pytest.approx(100.0)

    def test_no_memory_work_saturates(self):
        c = counters(mem_unit_busy=0.0)
        assert c.compute_to_memory_intensity() == pytest.approx(100.0)

    def test_divergence_reduces_intensity(self):
        coherent = counters(valu_utilization=100.0)
        divergent = counters(valu_utilization=30.0)
        assert divergent.compute_to_memory_intensity() < \
            coherent.compute_to_memory_intensity()


class TestFeatureDict:
    def test_contains_all_table2_features(self):
        features = counters().as_feature_dict()
        for name in PerfCounters.feature_names():
            assert name in features

    def test_feature_names_match_dict_keys(self):
        features = counters().as_feature_dict()
        assert set(features) == set(PerfCounters.feature_names())

    def test_percentage_scale_preserved(self):
        features = counters().as_feature_dict()
        assert features["VALUUtilization"] == pytest.approx(90.0)
        assert features["MemUnitBusy"] == pytest.approx(50.0)

    def test_fraction_scale_preserved(self):
        features = counters().as_feature_dict()
        assert features["icActivity"] == pytest.approx(0.4)
        assert features["NormVGPR"] == pytest.approx(0.25)

    def test_ctom_included(self):
        features = counters().as_feature_dict()
        assert features["CtoMIntensity"] == pytest.approx(
            counters().compute_to_memory_intensity()
        )
