"""Metrics registry: label handling, type safety, histogram buckets."""

from __future__ import annotations

import json

import pytest

from repro.errors import TelemetryError
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.profile import Profiler


class TestCounter:
    def test_starts_at_zero(self):
        counter = Counter("hits_total")
        assert counter.value() == 0.0
        assert counter.value(kernel="X") == 0.0

    def test_label_sets_are_independent_series(self):
        counter = Counter("cg_actions_total")
        counter.inc(kernel="Sort.TopScan")
        counter.inc(kernel="Sort.TopScan")
        counter.inc(kernel="LUD.Diagonal")
        assert counter.value(kernel="Sort.TopScan") == 2.0
        assert counter.value(kernel="LUD.Diagonal") == 1.0
        assert counter.value() == 0.0

    def test_label_order_is_irrelevant(self):
        counter = Counter("launches_total")
        counter.inc(kernel="K", policy="harmonia")
        counter.inc(policy="harmonia", kernel="K")
        assert counter.value(policy="harmonia", kernel="K") == 2.0

    def test_label_values_are_stringified(self):
        counter = Counter("phases_total")
        counter.inc(phase=1)
        assert counter.value(phase="1") == 1.0

    def test_negative_increment_rejected(self):
        counter = Counter("c_total")
        with pytest.raises(TelemetryError, match="cannot decrease"):
            counter.inc(-1.0)

    def test_samples_sorted_and_labelled(self):
        counter = Counter("c_total")
        counter.inc(kernel="B")
        counter.inc(3.0, kernel="A")
        samples = counter.samples()
        assert samples == [
            {"labels": {"kernel": "A"}, "value": 3.0},
            {"labels": {"kernel": "B"}, "value": 1.0},
        ]


class TestGauge:
    def test_set_and_read(self):
        gauge = Gauge("current_phase")
        assert gauge.value(kernel="K") is None
        gauge.set(2, kernel="K")
        gauge.set(3, kernel="K")
        assert gauge.value(kernel="K") == 3.0


class TestHistogram:
    def test_bucketing(self):
        histogram = Histogram("t_seconds", buckets=(0.001, 0.01, 0.1))
        for value in (0.0005, 0.005, 0.005, 0.05, 5.0):
            histogram.observe(value, kernel="K")
        assert histogram.bucket_counts(kernel="K") == (1, 2, 1, 1)
        assert histogram.count(kernel="K") == 5
        assert histogram.total(kernel="K") == pytest.approx(5.0605)

    def test_boundary_lands_in_bucket(self):
        histogram = Histogram("t", buckets=(1.0, 2.0))
        histogram.observe(1.0)
        assert histogram.bucket_counts() == (1, 0, 0)

    def test_unsorted_buckets_are_sorted(self):
        histogram = Histogram("t", buckets=(0.1, 0.001, 0.01))
        assert histogram.buckets == (0.001, 0.01, 0.1)

    def test_rejects_empty_and_duplicate_buckets(self):
        with pytest.raises(TelemetryError):
            Histogram("t", buckets=())
        with pytest.raises(TelemetryError):
            Histogram("t", buckets=(0.1, 0.1))


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total", "help")
        second = registry.counter("c_total")
        assert first is second

    def test_type_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("metric")
        with pytest.raises(TelemetryError, match="already registered"):
            registry.gauge("metric")

    def test_invalid_name_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(TelemetryError, match="invalid metric name"):
            registry.counter("bad name!")

    def test_as_dict_round_trips_through_json(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc(kernel="K")
        registry.gauge("g").set(1.5)
        registry.histogram("h", buckets=(0.1,)).observe(0.05)
        dumped = json.loads(json.dumps(registry.as_dict()))
        assert dumped["c_total"]["type"] == "counter"
        assert dumped["c_total"]["samples"][0]["value"] == 1.0
        assert dumped["g"]["type"] == "gauge"
        assert dumped["h"]["samples"][0]["count"] == 1

    def test_write_json(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("c_total").inc()
        path = tmp_path / "metrics.json"
        registry.write_json(path)
        assert json.loads(path.read_text())["c_total"]["type"] == "counter"

    def test_render_text_mentions_every_series(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "a counter").inc(kernel="K")
        registry.histogram("h_seconds").observe(0.5)
        text = registry.render_text()
        assert "c_total{kernel=K} 1" in text
        assert "h_seconds count=1" in text


class TestProfiler:
    def test_sections_accumulate(self):
        profiler = Profiler()
        with profiler.section("work"):
            pass
        with profiler.section("work"):
            pass
        stats = profiler.stats()
        assert stats["work"].count == 2
        assert stats["work"].total_s >= 0.0

    def test_decorator_times_calls(self):
        profiler = Profiler()

        @profiler.profiled("f")
        def f(x):
            return x + 1

        assert f(1) == 2
        assert profiler.stats()["f"].count == 1

    def test_report_lists_sections(self):
        profiler = Profiler()
        profiler.record("alpha", 0.25)
        profiler.record("beta", 0.75)
        report = profiler.report()
        assert "alpha" in report and "beta" in report
        assert "75.0%" in report

    def test_reset(self):
        profiler = Profiler()
        profiler.record("x", 1.0)
        profiler.reset()
        assert profiler.stats() == {}


class TestRegistryMerge:
    def _snapshot(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "a counter").inc(2.0, kernel="K")
        registry.gauge("g", "a gauge").set(1.5)
        registry.histogram("h_seconds", buckets=(0.1, 1.0)).observe(0.05)
        return registry.as_dict()

    def test_merge_into_empty_equals_source(self):
        snapshot = self._snapshot()
        merged = MetricsRegistry()
        merged.merge(snapshot)
        assert merged.as_dict() == snapshot

    def test_counters_add_across_merges(self):
        snapshot = self._snapshot()
        merged = MetricsRegistry()
        merged.merge(snapshot)
        merged.merge(snapshot)
        assert merged.counter("c_total").value(kernel="K") == 4.0

    def test_histograms_add_buckets_and_sums(self):
        snapshot = self._snapshot()
        merged = MetricsRegistry()
        merged.merge(snapshot)
        merged.merge(snapshot)
        histogram = merged.histogram("h_seconds")
        assert histogram.count() == 2
        assert histogram.total() == pytest.approx(0.1)
        assert histogram.bucket_counts() == (2, 0, 0)

    def test_gauge_is_last_write_wins(self):
        merged = MetricsRegistry()
        merged.gauge("g").set(9.0)
        merged.merge(self._snapshot())
        assert merged.gauge("g").value() == 1.5

    def test_from_dict_round_trip(self):
        snapshot = self._snapshot()
        assert MetricsRegistry.from_dict(snapshot).as_dict() == snapshot

    def test_mismatched_histogram_buckets_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h_seconds", buckets=(0.5,)).observe(0.1)
        with pytest.raises(TelemetryError, match="bucket"):
            registry.merge(self._snapshot())

    def test_negative_counter_snapshot_rejected(self):
        snapshot = self._snapshot()
        snapshot["c_total"]["samples"][0]["value"] = -1.0
        with pytest.raises(TelemetryError):
            MetricsRegistry().merge(snapshot)

    def test_type_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.gauge("c_total")
        with pytest.raises(TelemetryError, match="already registered"):
            registry.merge(self._snapshot())

    def test_unknown_kind_rejected(self):
        with pytest.raises(TelemetryError, match="kind"):
            MetricsRegistry().merge(
                {"x": {"type": "summary", "help": "", "samples": []}})

    def test_concurrent_increments_are_exact(self):
        import threading

        counter = MetricsRegistry().counter("c_total")

        def spin():
            for _ in range(1000):
                counter.inc(worker="w")

        threads = [threading.Thread(target=spin) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value(worker="w") == 4000.0


class TestPrometheusRendering:
    def test_exposition_format(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "the counter").inc(3, kernel="K")
        registry.gauge("g", "the gauge").set(1.5, mode="warm")
        registry.histogram("h_seconds", "the hist",
                           buckets=(0.1, 1.0)).observe(0.05)
        text = registry.render_prometheus()
        assert "# HELP c_total the counter" in text
        assert "# TYPE c_total counter" in text
        assert 'c_total{kernel="K"} 3' in text
        assert 'g{mode="warm"} 1.5' in text
        assert '# TYPE h_seconds histogram' in text
        assert 'h_seconds_bucket{le="0.1"} 1' in text
        assert 'h_seconds_bucket{le="1"} 1' in text       # cumulative
        assert 'h_seconds_bucket{le="+Inf"} 1' in text
        assert "h_seconds_sum 0.05" in text
        assert "h_seconds_count 1" in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc(path='a"b\\c\nd')
        text = registry.render_prometheus()
        assert 'c_total{path="a\\"b\\\\c\\nd"} 1' in text


class TestProfilerSelfTime:
    def test_nested_sections_split_self_time(self):
        import time

        profiler = Profiler()
        with profiler.section("outer"):
            with profiler.section("inner"):
                time.sleep(0.02)
        stats = profiler.stats()
        assert stats["outer"].total_s >= stats["inner"].total_s
        assert stats["outer"].self_s == pytest.approx(
            stats["outer"].total_s - stats["inner"].total_s)
        assert stats["inner"].self_s == pytest.approx(
            stats["inner"].total_s)

    def test_sibling_threads_have_independent_stacks(self):
        import threading
        import time

        profiler = Profiler()

        def worker():
            with profiler.section("thread_work"):
                time.sleep(0.01)

        with profiler.section("outer"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        stats = profiler.stats()
        # The worker's section ran on another thread: it must not be
        # subtracted from outer's self time.
        assert stats["outer"].self_s == pytest.approx(
            stats["outer"].total_s)
        assert stats["thread_work"].count == 1

    def test_two_arg_record_still_works(self):
        profiler = Profiler()
        profiler.record("legacy", 0.5)
        assert profiler.stats()["legacy"].self_s == 0.5

    def test_report_has_self_column(self):
        profiler = Profiler()
        profiler.record("a", 1.0, 0.75)
        report = profiler.report()
        assert "self s" in report
