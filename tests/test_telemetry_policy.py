"""Policy-level telemetry: the decision event stream and ``stats()``.

A scripted two-phase kernel (compute-heavy opening, memory-heavy tail)
drives a fresh Harmonia policy through the full CG -> FG sequence twice;
the emitted event stream must tell that story in order, and the disabled
path must reproduce the exact same run.
"""

from __future__ import annotations

import pytest

from repro.core.harmonia import ControllerStats
from repro.runtime.simulator import ApplicationRunner
from repro.perf.kernelspec import KernelSpec
from repro.telemetry.events import (
    CGJump,
    ConfigApplied,
    FGConverged,
    FGRevert,
    FGStep,
    KernelLaunch,
    PhaseChange,
)
from repro.telemetry.export import InMemorySink
from repro.telemetry.handle import NULL_TELEMETRY, Telemetry
from repro.workloads.application import Application
from repro.workloads.kernel import TableSchedule, WorkloadKernel

ITERATIONS = 12
PHASE_SWITCH = 6

#: Compute-heavy opening phase: lots of VALU work per fetched byte.
_COMPUTE_PHASE = {
    "valu_insts_per_item": 2400.0,
    "vfetch_insts_per_item": 1.0,
    "vwrite_insts_per_item": 0.5,
}

#: Memory-heavy tail phase: streaming fetches, little arithmetic.
_MEMORY_PHASE = {
    "valu_insts_per_item": 40.0,
    "vfetch_insts_per_item": 14.0,
    "vwrite_insts_per_item": 4.0,
}


def _two_phase_application() -> Application:
    base = KernelSpec(
        name="Scripted.TwoPhase",
        total_workitems=1 << 18,
        workgroup_size=256,
        valu_insts_per_item=2400.0,
        vfetch_insts_per_item=1.0,
        vwrite_insts_per_item=0.5,
        bytes_per_fetch=8.0,
        bytes_per_write=8.0,
    )
    rows = tuple([_COMPUTE_PHASE] * PHASE_SWITCH
                 + [_MEMORY_PHASE] * (ITERATIONS - PHASE_SWITCH))
    kernel = WorkloadKernel(base=base, schedule=TableSchedule(rows=rows,
                                                              wrap=False))
    return Application(name="ScriptedTwoPhase", suite="test",
                       kernels=(kernel,), iterations=ITERATIONS)


@pytest.fixture(scope="module")
def scripted_run(context):
    """One instrumented run of the two-phase kernel under Harmonia."""
    sink = InMemorySink()
    telemetry = Telemetry(sink=sink)
    policy = context.harmonia_policy(telemetry=telemetry)
    runner = ApplicationRunner(context.platform, telemetry=telemetry)
    result = runner.run(_two_phase_application(), policy)
    return policy, result, sink.events


class TestEventStream:
    def test_every_launch_is_recorded(self, scripted_run):
        _, _, events = scripted_run
        launches = [e for e in events if isinstance(e, KernelLaunch)]
        assert len(launches) == ITERATIONS
        assert [e.iteration for e in launches] == list(range(ITERATIONS))

    def test_both_phases_are_detected(self, scripted_run):
        _, _, events = scripted_run
        phases = [e for e in events if isinstance(e, PhaseChange)]
        # The opening phase plus at least the scripted switch.
        assert len(phases) >= 2
        assert phases[0].iteration == 0
        assert phases[0].phase_index == 1
        # Some phase change lands at or just after the scripted switch.
        assert any(e.iteration >= PHASE_SWITCH for e in phases)

    def test_cg_jump_follows_each_phase_change(self, scripted_run):
        _, _, events = scripted_run
        jumps = [e for e in events if isinstance(e, CGJump)]
        assert jumps, "the CG block never acted"
        # The first decision of the run: phase change, then the CG jump.
        first_phase = next(i for i, e in enumerate(events)
                           if isinstance(e, PhaseChange))
        first_jump = next(i for i, e in enumerate(events)
                          if isinstance(e, CGJump))
        assert first_phase < first_jump
        for jump in jumps:
            assert jump.compute_bin in ("low", "med", "high")
            assert jump.bandwidth_bin in ("low", "med", "high")

    def test_fg_refines_after_cg(self, scripted_run):
        context_events = scripted_run[2]
        steps = [e for e in context_events if isinstance(e, FGStep)]
        assert steps, "the FG loop never stepped"
        first_jump = next(i for i, e in enumerate(context_events)
                          if isinstance(e, CGJump))
        first_step = next(i for i, e in enumerate(context_events)
                          if isinstance(e, FGStep))
        assert first_jump < first_step
        for step in steps:
            assert step.tunable in ("n_cu", "f_cu", "f_mem")
            assert step.direction in (-1, 1)
            assert step.old_config != step.new_config

    def test_config_changes_are_attributed(self, scripted_run, context):
        _, _, events = scripted_run
        applied = [e for e in events if isinstance(e, ConfigApplied)]
        assert applied
        for event in applied:
            assert event.source in ("cg", "fg", "recall")
            assert event.old_config != event.new_config
            assert event.new_config in context.platform.config_space

    def test_reverts_restore_the_previous_config(self, scripted_run):
        _, _, events = scripted_run
        for event in events:
            if isinstance(event, FGRevert):
                assert event.old_config != event.new_config

    def test_events_only_name_the_scripted_kernel(self, scripted_run):
        _, _, events = scripted_run
        assert {e.kernel for e in events} == {"Scripted.TwoPhase"}


class TestStatsAccessor:
    def test_stats_match_event_stream(self, scripted_run):
        policy, _, events = scripted_run
        stats = policy.stats("Scripted.TwoPhase")
        assert isinstance(stats, ControllerStats)
        assert stats.phase_changes == sum(
            isinstance(e, PhaseChange) for e in events)
        assert stats.cg_actions == sum(isinstance(e, CGJump) for e in events)
        fg_events = sum(isinstance(e, (FGStep, FGRevert, FGConverged))
                        for e in events)
        # Every FG action produces at most one FG event (no-op proposals
        # are actions without an observable decision).
        assert stats.fg_actions >= fg_events > 0

    def test_unknown_kernel_reads_as_zero(self, context):
        policy = context.harmonia_policy()
        assert policy.stats("No.Such.Kernel") == ControllerStats()

    def test_all_kernels_view(self, scripted_run):
        policy, _, _ = scripted_run
        per_kernel = policy.stats()
        assert list(per_kernel) == ["Scripted.TwoPhase"]
        assert per_kernel["Scripted.TwoPhase"] == policy.stats(
            "Scripted.TwoPhase")


class TestDisabledPathIdentity:
    def test_disabled_run_is_bit_identical(self, context, scripted_run):
        _, instrumented, _ = scripted_run
        policy = context.harmonia_policy()
        assert policy.telemetry is NULL_TELEMETRY
        runner = ApplicationRunner(context.platform)
        plain = runner.run(_two_phase_application(), policy)
        assert plain.metrics == instrumented.metrics
        assert [r.config for r in plain.trace.records] == [
            r.config for r in instrumented.trace.records]
        assert [r.time for r in plain.trace.records] == [
            r.time for r in instrumented.trace.records]

    def test_null_telemetry_serves_noop_instruments(self):
        NULL_TELEMETRY.metrics.counter("anything_total").inc(kernel="K")
        NULL_TELEMETRY.emit(object())
        with NULL_TELEMETRY.time("section"):
            pass
        assert NULL_TELEMETRY.enabled is False

    def test_runner_metrics_track_launches(self, context):
        telemetry = Telemetry()
        policy = context.harmonia_policy(telemetry=telemetry)
        runner = ApplicationRunner(context.platform, telemetry=telemetry)
        runner.run(_two_phase_application(), policy)
        launches = telemetry.metrics.counter("kernel_launches_total")
        assert launches.value(kernel="Scripted.TwoPhase",
                              policy="harmonia") == ITERATIONS
        histogram = telemetry.metrics.histogram("launch_time_seconds")
        assert histogram.count(kernel="Scripted.TwoPhase") == ITERATIONS
