"""The batch migration is exactly result-preserving.

Every scalar ``run_kernel`` loop that moved onto cached sweep surfaces
(the application runner, the Pareto frontier scoring, the oracle-gap
search, the characterization curves, the event-driven validation) must
reproduce the old loop's values bitwise — deterministic *and* noisy
platforms, because the launch-keyed cache-then-perturb draws make the
indexed surface element identical to the scalar call it replaced.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.pareto import distance_to_frontier, pareto_frontier
from repro.analysis.sweep import ConfigSweep
from repro.experiments.oracle_gap import PerfConstrainedOracle
from repro.experiments.characterization import _curve
from repro.platform.hd7970 import make_hd7970_platform
from repro.platform.store import SweepStore
from repro.platform.sweepcache import SweepCache, shared_cache
from repro.runtime.metrics import ed2
from repro.workloads.registry import all_kernels, get_application


def _results_equal(a, b):
    assert a.kernel_name == b.kernel_name
    assert a.config == b.config
    assert a.time == b.time
    assert a.breakdown == b.breakdown
    assert a.counters == b.counters
    assert a.power == b.power
    assert a.achieved_bandwidth == b.achieved_bandwidth
    assert a.occupancy == b.occupancy
    assert a.bandwidth_limit == b.bandwidth_limit


class TestLaunchEqualsRunKernel:
    def test_deterministic(self, fresh_platform):
        space = fresh_platform.config_space
        for kernel in all_kernels()[:5]:
            for config in (space.max_config(), space.min_config(),
                           fresh_platform.baseline_config()):
                _results_equal(
                    fresh_platform.run_kernel(kernel.base, config),
                    fresh_platform.launch(kernel.base, config),
                )

    def test_noisy_platform_takes_scalar_path(self):
        platform = make_hd7970_platform(noise_std_fraction=0.05, seed=7)
        spec = all_kernels()[0].base
        config = platform.baseline_config()
        for iteration in (0, 1, 5):
            _results_equal(
                platform.run_kernel(spec, config, iteration=iteration),
                platform.launch(spec, config, iteration=iteration),
            )

    def test_full_grid_deterministic(self, fresh_platform):
        spec = all_kernels()[3].base
        for config in fresh_platform.config_space:
            _results_equal(
                fresh_platform.run_kernel(spec, config),
                fresh_platform.launch(spec, config),
            )

    def test_launch_validates_config(self, fresh_platform):
        from repro.errors import ConfigurationError
        spec = all_kernels()[0].base
        bad = fresh_platform.baseline_config().replace(n_cu=3)
        with pytest.raises(ConfigurationError):
            fresh_platform.launch(spec, bad)


class TestParetoEquivalence:
    def test_distance_matches_scalar_run(self, fresh_platform):
        spec = all_kernels()[0].base
        frontier = pareto_frontier(ConfigSweep(fresh_platform, spec))
        config = fresh_platform.baseline_config()
        via_surface = distance_to_frontier(frontier, config,
                                           platform=fresh_platform)
        via_scalar = distance_to_frontier(
            frontier, config,
            result=fresh_platform.run_kernel(spec, config),
        )
        assert via_surface == via_scalar


class TestOracleGapEquivalence:
    def test_noisy_search_matches_scalar_loop(self):
        platform = make_hd7970_platform(noise_std_fraction=0.05, seed=11)
        spec = all_kernels()[1].base
        tolerance = 0.01
        oracle = PerfConstrainedOracle(platform, perf_tolerance=tolerance)
        picked = oracle.best_config_for_spec(spec)

        # The pre-migration scalar loop, verbatim: run every grid point
        # through run_kernel and keep the first strict ED2 minimum among
        # the near-baseline configs.
        baseline = platform.run_kernel(spec, platform.baseline_config())
        limit = baseline.time * (1.0 + tolerance)
        best_config, best_metric = None, float("inf")
        for config in platform.config_space:
            result = platform.run_kernel(spec, config)
            if result.time > limit:
                continue
            metric = ed2(result.energy, result.time)
            if metric < best_metric:
                best_config, best_metric = config, metric
        assert picked == best_config


class TestCharacterizationEquivalence:
    @pytest.mark.parametrize("tunable", ["n_cu", "f_cu", "f_mem"])
    def test_noisy_curve_matches_scalar_loop(self, tunable):
        platform = make_hd7970_platform(noise_std_fraction=0.05, seed=3)
        spec = all_kernels()[2].base
        curve = _curve(platform, spec, tunable)

        space = platform.config_space
        top = space.max_config()
        values = {"n_cu": space.cu_counts,
                  "f_cu": space.compute_frequencies,
                  "f_mem": space.memory_frequencies}[tunable]
        times = [platform.run_kernel(spec, top.replace(**{tunable: v})).time
                 for v in values]
        reference = 1.0 / times[-1]
        expected = tuple((float(v), (1.0 / t) / reference)
                         for v, t in zip(values, times))
        assert curve.points == expected


class TestEventSimEquivalence:
    def test_warm_surface_matches_cold(self, tmp_path, platform):
        """Store-served event-driven times are bitwise the simulator's."""
        from repro.experiments.ext_model_validation import (
            EVENTSIM_KIND, _load_event_times, _sample_configs,
            _simulate_times)
        from repro.memory.controller import MemoryControllerModel
        from repro.perf.eventsim import EventDrivenModel

        calibration = platform.calibration
        spec = all_kernels()[0].base
        configs = _sample_configs(platform.config_space)[:6]

        store = SweepStore(tmp_path / "s")
        assert _load_event_times(store, calibration, spec, configs) is None
        cold = _simulate_times((calibration, spec, tuple(configs)))
        store.save_record(
            EVENTSIM_KIND, (calibration, spec, tuple(configs)),
            {"time": np.array(cold, dtype=np.float64)},
            meta={"kernel_name": spec.name},
        )
        warm = _load_event_times(store, calibration, spec, configs)
        assert isinstance(warm, np.ndarray)
        assert np.array_equal(np.asarray(cold, dtype=np.float64), warm)
        controller = MemoryControllerModel(
            arch=calibration.arch, timing=calibration.gddr5_timing
        )
        event_model = EventDrivenModel(
            calibration.arch, controller, calibration.clock_domain_model()
        )
        scalar = np.array([event_model.run(spec, c).time for c in configs],
                          dtype=np.float64)
        assert np.array_equal(warm, scalar)


class TestRunnerEquivalence:
    def test_application_run_matches_scalar_loop(self):
        """A full application run through the surface-serving launch path
        equals the old per-launch run_kernel loop, launch for launch."""
        from repro.core.baseline import BaselinePolicy
        from repro.core.policy import LaunchContext
        from repro.runtime.simulator import ApplicationRunner

        platform = make_hd7970_platform()
        application = get_application("XSBench")
        runner = ApplicationRunner(platform)
        outcome = runner.run(application,
                             BaselinePolicy(platform.config_space))

        # The pre-migration runner loop, verbatim: scalar run_kernel per
        # launch, same policy state machine.
        replica = BaselinePolicy(platform.config_space)
        records = list(outcome.trace.records)
        index = 0
        for iteration, kernel, spec in application.launches():
            context = LaunchContext(kernel_name=kernel.name,
                                    iteration=iteration, spec=spec)
            config = replica.config_for(context)
            expected = platform.run_kernel(spec, config, iteration=iteration)
            replica.observe(context, expected)
            _results_equal(records[index].result, expected)
            index += 1
        assert index == len(records)
