"""Tests for :mod:`repro.workloads.serialization`."""

import json

import pytest

from repro.errors import WorkloadError
from repro.workloads import serialization
from repro.workloads.kernel import WorkloadKernel
from repro.workloads.registry import all_applications, get_application


class TestRoundTrip:
    @pytest.mark.parametrize("app_name", [
        "MaxFlops", "Sort", "Graph500", "CoMD",
    ])
    def test_application_round_trip(self, app_name):
        original = get_application(app_name)
        restored = serialization.loads(serialization.dumps(original))
        assert restored.name == original.name
        assert restored.iterations == original.iterations
        assert restored.kernel_names() == original.kernel_names()
        # Every launch of every iteration must be identical.
        for (_, _, spec_a), (_, _, spec_b) in zip(original.launches(),
                                                  restored.launches()):
            assert spec_a == spec_b

    def test_every_registered_application_serializes(self):
        for app in all_applications():
            text = serialization.dumps(app)
            restored = serialization.loads(text)
            assert restored.total_launches() == app.total_launches()

    def test_output_is_valid_json(self):
        text = serialization.dumps(get_application("Stencil"))
        data = json.loads(text)
        assert data["name"] == "Stencil"
        assert data["kernels"][0]["schedule"]["type"] == "constant"

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "app.json"
        original = get_application("Graph500")
        serialization.save(original, path)
        restored = serialization.load(path)
        assert restored.kernel_names() == original.kernel_names()


class TestSpecSerialization:
    def test_spec_round_trip(self):
        spec = get_application("BPT").kernels[0].base
        restored = serialization.spec_from_dict(
            serialization.spec_to_dict(spec)
        )
        assert restored == spec

    def test_unknown_field_rejected(self):
        data = serialization.spec_to_dict(
            get_application("BPT").kernels[0].base
        )
        data["turbo_mode"] = True
        with pytest.raises(WorkloadError, match="unknown kernel-spec"):
            serialization.spec_from_dict(data)

    def test_spec_validation_still_applies(self):
        data = serialization.spec_to_dict(
            get_application("BPT").kernels[0].base
        )
        data["branch_divergence"] = 2.0
        from repro.errors import KernelSpecError
        with pytest.raises(KernelSpecError):
            serialization.spec_from_dict(data)


class TestScheduleSerialization:
    def test_default_schedule_is_constant(self):
        data = serialization.application_to_dict(get_application("SPMV"))
        del data["kernels"][0]["schedule"]
        restored = serialization.application_from_dict(data)
        spec0 = restored.kernels[0].spec_for_iteration(0)
        spec9 = restored.kernels[0].spec_for_iteration(9)
        assert spec0 == spec9

    def test_table_schedule_round_trip(self):
        app = get_application("Graph500")
        restored = serialization.loads(serialization.dumps(app))
        bottom = next(k for k in restored.kernels
                      if k.name == "Graph500.BottomStepUp")
        specs = {bottom.spec_for_iteration(i).total_workitems
                 for i in range(8)}
        assert len(specs) > 3

    def test_unknown_schedule_type_rejected(self):
        data = serialization.application_to_dict(get_application("SPMV"))
        data["kernels"][0]["schedule"] = {"type": "random-walk"}
        with pytest.raises(WorkloadError, match="unknown schedule"):
            serialization.application_from_dict(data)


class TestErrors:
    def test_malformed_json(self):
        with pytest.raises(WorkloadError, match="malformed"):
            serialization.loads("{not json")

    def test_missing_keys(self):
        with pytest.raises(WorkloadError, match="missing workload key"):
            serialization.application_from_dict({"name": "X"})
