"""Hierarchical spans: nesting, propagation, export, signatures."""

from __future__ import annotations

import json
import os
import threading

import pytest

from repro.errors import TelemetryError
from repro.runtime.parallel import fan_out, fan_out_processes
from repro.telemetry import Telemetry
from repro.telemetry.handle import NULL_TELEMETRY
from repro.telemetry.spans import (
    SPAN_SCHEMA_MANIFEST,
    SPAN_SCHEMA_VERSION,
    SpanRecord,
    SpanTracker,
    aggregate_spans,
    ambient_telemetry,
    capture_span_context,
    critical_path,
    format_span_report,
    load_chrome_trace,
    span_fields,
    span_tree,
    tree_signature,
    use_span_context,
    write_chrome_trace,
)


def traced_telemetry() -> Telemetry:
    return Telemetry(spans=SpanTracker())


def record(name, span_id, parent_id, start, end, labels=()):
    """Hand-built SpanRecord for tree/signature tests."""
    return SpanRecord(name=name, span_id=span_id, parent_id=parent_id,
                      start_s=start, end_s=end, pid=1, tid=1,
                      labels=tuple(labels))


class TestSpanRecording:
    def test_single_span_recorded_with_labels(self):
        telemetry = traced_telemetry()
        with telemetry.span("work", kernel="K", attempt=2):
            pass
        (rec,) = telemetry.spans.records()
        assert rec.name == "work"
        assert rec.parent_id is None
        assert rec.label_dict() == {"kernel": "K", "attempt": "2"}
        assert rec.end_s >= rec.start_s
        assert rec.pid == os.getpid()

    def test_nesting_sets_parent_ids(self):
        telemetry = traced_telemetry()
        with telemetry.span("outer"):
            with telemetry.span("inner"):
                pass
        inner, outer = telemetry.spans.records()
        assert inner.name == "inner" and outer.name == "outer"
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_span_ids_unique_and_pid_tagged(self):
        telemetry = traced_telemetry()
        for _ in range(5):
            with telemetry.span("s"):
                pass
        ids = [r.span_id for r in telemetry.spans.records()]
        assert len(set(ids)) == 5
        assert all(span_id >> 24 == os.getpid() for span_id in ids)

    def test_span_opens_matching_profiler_section(self):
        telemetry = traced_telemetry()
        with telemetry.span("pipeline.x"):
            pass
        assert telemetry.profiler.stats()["pipeline.x"].count == 1

    def test_null_telemetry_records_nothing(self):
        with NULL_TELEMETRY.span("work", kernel="K"):
            pass
        assert len(NULL_TELEMETRY.spans) == 0

    def test_exception_still_closes_span(self):
        telemetry = traced_telemetry()
        with pytest.raises(ValueError):
            with telemetry.span("doomed"):
                raise ValueError("boom")
        (rec,) = telemetry.spans.records()
        assert rec.name == "doomed"

    def test_schema_manifest_matches_dataclass(self):
        assert SPAN_SCHEMA_MANIFEST[SPAN_SCHEMA_VERSION] == span_fields()


class TestContextPropagation:
    def test_ambient_telemetry_inside_span(self):
        telemetry = traced_telemetry()
        assert ambient_telemetry() is not telemetry
        with telemetry.span("outer"):
            assert ambient_telemetry() is telemetry
        assert not ambient_telemetry().enabled

    def test_capture_and_use_across_thread(self):
        telemetry = traced_telemetry()
        with telemetry.span("outer"):
            context = capture_span_context()

            def worker():
                with use_span_context(context):
                    with context.telemetry.span("child"):
                        pass

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        child, outer = (sorted(telemetry.spans.records(),
                               key=lambda r: r.name))
        assert child.parent_id == outer.span_id
        assert child.tid != outer.tid

    def test_capture_without_open_span_is_none(self):
        assert capture_span_context() is None
        with use_span_context(None):  # no-op passthrough
            pass

    def test_fan_out_children_parent_under_caller_span(self):
        telemetry = traced_telemetry()

        def work(item):
            with ambient_telemetry().span("leaf", item=item):
                return item * 2

        with telemetry.span("outer"):
            assert fan_out(work, [1, 2, 3, 4], jobs=4) == [2, 4, 6, 8]
        records = telemetry.spans.records()
        outer = next(r for r in records if r.name == "outer")
        leaves = [r for r in records if r.name == "leaf"]
        assert len(leaves) == 4
        assert all(leaf.parent_id == outer.span_id for leaf in leaves)

    def test_fan_out_serial_and_pooled_same_signature(self):
        def run(jobs):
            telemetry = traced_telemetry()

            def work(item):
                with ambient_telemetry().span("leaf", item=item):
                    return item

            with telemetry.span("outer", mode="x"):
                fan_out(work, [1, 2, 3], jobs=jobs)
            return tree_signature(telemetry.spans.records())

        assert run(1) == run(3)


def _process_work(item):
    """Top-level worker for fan_out_processes (fork-picklable)."""
    telemetry = ambient_telemetry()
    telemetry.metrics.counter("worker_items_total").inc(kind="proc")
    with telemetry.span("leaf", item=item):
        return item + 100


class TestProcessPropagation:
    def test_worker_spans_and_metrics_merge_back(self):
        telemetry = traced_telemetry()
        with telemetry.span("outer"):
            results = fan_out_processes(_process_work, [1, 2, 3], jobs=2)
        assert results == [101, 102, 103]
        records = telemetry.spans.records()
        outer = next(r for r in records if r.name == "outer")
        wrappers = [r for r in records if r.name == "fan_out_processes"]
        leaves = [r for r in records if r.name == "leaf"]
        assert len(wrappers) == 3 and len(leaves) == 3
        assert all(w.parent_id == outer.span_id for w in wrappers)
        wrapper_ids = {w.span_id for w in wrappers}
        assert all(leaf.parent_id in wrapper_ids for leaf in leaves)
        # Counters from every worker process merged into the parent.
        assert telemetry.metrics.counter(
            "worker_items_total").value(kind="proc") == 3.0

    def test_serial_and_forked_trees_agree(self):
        def run(jobs):
            telemetry = traced_telemetry()
            with telemetry.span("outer"):
                fan_out_processes(_process_work, [1, 2, 3], jobs=jobs)
            return (tree_signature(telemetry.spans.records()),
                    telemetry.metrics.counter(
                        "worker_items_total").value(kind="proc"))

        serial_sig, serial_count = run(1)
        forked_sig, forked_count = run(2)
        assert serial_sig == forked_sig
        assert serial_count == forked_count == 3.0


class TestChromeTrace:
    def test_round_trip(self, tmp_path):
        telemetry = traced_telemetry()
        with telemetry.span("outer", kernel="K"):
            with telemetry.span("inner"):
                pass
        path = tmp_path / "trace.json"
        count = write_chrome_trace(path, telemetry.spans.records())
        assert count == 2
        loaded = load_chrome_trace(path)
        assert tree_signature(loaded) == tree_signature(
            telemetry.spans.records())
        for original, roundtripped in zip(
                sorted(telemetry.spans.records(), key=lambda r: r.span_id),
                sorted(loaded, key=lambda r: r.span_id)):
            assert roundtripped.name == original.name
            assert roundtripped.labels == original.labels
            assert roundtripped.duration_s == pytest.approx(
                original.duration_s, abs=1e-5)

    def test_trace_is_perfetto_shaped(self, tmp_path):
        telemetry = traced_telemetry()
        with telemetry.span("outer"):
            pass
        path = tmp_path / "trace.json"
        write_chrome_trace(path, telemetry.spans.records())
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert complete and all(e["cat"] == "span" for e in complete)
        assert all({"ts", "dur", "pid", "tid"} <= e.keys()
                   for e in complete)
        assert any(e["ph"] == "M" for e in events)  # process metadata

    def test_load_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(TelemetryError):
            load_chrome_trace(bad)
        bad.write_text(json.dumps({"no": "traceEvents"}))
        with pytest.raises(TelemetryError):
            load_chrome_trace(bad)
        bad.write_text(json.dumps({"traceEvents": [
            {"ph": "X", "cat": "span", "name": "x", "ts": 0, "dur": 1,
             "pid": 1, "tid": 1, "args": {}}]}))
        with pytest.raises(TelemetryError, match="span_id"):
            load_chrome_trace(bad)


class TestTreesAndSignatures:
    def test_unresolvable_parent_becomes_root(self):
        records = [record("orphan", 2, 999, 0.0, 1.0)]
        (root,) = span_tree(records)
        assert root.record.name == "orphan"

    def test_children_sorted_by_start(self):
        records = [
            record("root", 1, None, 0.0, 3.0),
            record("b", 3, 1, 2.0, 3.0),
            record("a", 2, 1, 1.0, 2.0),
        ]
        (root,) = span_tree(records)
        assert [c.record.name for c in root.children] == ["a", "b"]

    def test_signature_ignores_ids_times_and_order(self):
        first = [record("root", 1, None, 0.0, 2.0),
                 record("x", 2, 1, 0.0, 1.0, (("k", "v"),))]
        second = [record("x", 77, 50, 5.0, 9.0, (("k", "v"),)),
                  record("root", 50, None, 4.0, 10.0)]
        assert tree_signature(first) == tree_signature(second)

    def test_signature_sees_structure(self):
        nested = [record("root", 1, None, 0.0, 2.0),
                  record("x", 2, 1, 0.0, 1.0)]
        flat = [record("root", 1, None, 0.0, 2.0),
                record("x", 2, None, 0.0, 1.0)]
        assert tree_signature(nested) != tree_signature(flat)

    def test_detach_factors_out_attribution(self):
        def run(parent_of_fill):
            return [
                record("node_a", 1, None, 0.0, 2.0),
                record("node_b", 2, None, 2.0, 4.0),
                record("fill", 3, parent_of_fill, 0.5, 1.0),
                record("compute", 4, 3, 0.6, 0.9),
            ]

        led_by_a, led_by_b = run(1), run(2)
        assert tree_signature(led_by_a) != tree_signature(led_by_b)
        assert (tree_signature(led_by_a, detach=("fill",))
                == tree_signature(led_by_b, detach=("fill",)))


class TestAggregationAndReport:
    def _records(self):
        return [
            record("root", 1, None, 0.0, 10.0),
            record("child", 2, 1, 0.0, 4.0),
            record("child", 3, 1, 4.0, 10.0),
            record("leaf", 4, 3, 5.0, 6.0),
        ]

    def test_self_time_subtracts_direct_children(self):
        aggregates = aggregate_spans(self._records())
        assert aggregates["root"].count == 1
        assert aggregates["root"].total_s == pytest.approx(10.0)
        assert aggregates["root"].self_s == pytest.approx(0.0)
        assert aggregates["child"].count == 2
        assert aggregates["child"].total_s == pytest.approx(10.0)
        assert aggregates["child"].self_s == pytest.approx(9.0)
        assert aggregates["leaf"].self_s == pytest.approx(1.0)

    def test_critical_path_follows_heaviest_child(self):
        path = [r.name for r in critical_path(self._records())]
        assert path == ["root", "child", "leaf"]

    def test_format_span_report(self):
        report = format_span_report(self._records())
        assert "root" in report and "child" in report
        assert "critical path" in report.lower()
        assert "self" in report

    def test_empty_records(self):
        assert critical_path([]) == []
        assert aggregate_spans([]) == {}
        assert "none recorded" in format_span_report([]).lower()


class TestTrackerMerging:
    def test_extend_splices_foreign_records(self):
        tracker = SpanTracker()
        parent_id = tracker.allocate_id()
        foreign = SpanTracker(epoch=tracker.epoch, root_parent=parent_id)
        telemetry = Telemetry(spans=foreign)
        with telemetry.span("remote"):
            pass
        tracker.extend(foreign.records())
        (rec,) = tracker.records()
        assert rec.parent_id == parent_id
