"""Unit tests for :mod:`repro.core.monitor` (Section 5.1's monitoring)."""

import pytest

from repro.errors import PolicyError
from repro.core.monitor import MonitoringBlock, PhaseDetector
from repro.perf.counters import PerfCounters


def counters(valu_busy=50.0, valu_insts=100.0, utilization=90.0, vgpr=0.25):
    return PerfCounters(
        valu_utilization=utilization,
        valu_busy=valu_busy,
        mem_unit_busy=40.0,
        mem_unit_stalled=5.0,
        write_unit_stalled=2.0,
        ic_activity=0.3,
        norm_vgpr=vgpr,
        norm_sgpr=0.2,
        valu_insts_millions=valu_insts,
        vfetch_insts_millions=10.0,
        vwrite_insts_millions=5.0,
    )


class TestMonitoringBlock:
    def test_first_sample_passes_through(self):
        monitor = MonitoringBlock(alpha=0.4)
        features = monitor.update("k", counters(valu_busy=80.0))
        assert features["VALUBusy"] == pytest.approx(80.0)

    def test_ewma_smooths_jumps(self):
        monitor = MonitoringBlock(alpha=0.4)
        monitor.update("k", counters(valu_busy=100.0))
        smoothed = monitor.update("k", counters(valu_busy=0.0))
        assert smoothed["VALUBusy"] == pytest.approx(60.0)

    def test_converges_to_stable_value(self):
        monitor = MonitoringBlock(alpha=0.4)
        monitor.update("k", counters(valu_busy=100.0))
        for _ in range(30):
            smoothed = monitor.update("k", counters(valu_busy=20.0))
        assert smoothed["VALUBusy"] == pytest.approx(20.0, abs=0.1)

    def test_kernels_tracked_independently(self):
        monitor = MonitoringBlock(alpha=0.4)
        monitor.update("a", counters(valu_busy=100.0))
        monitor.update("b", counters(valu_busy=0.0))
        assert monitor.current("a")["VALUBusy"] == pytest.approx(100.0)
        assert monitor.current("b")["VALUBusy"] == pytest.approx(0.0)

    def test_reset_kernel(self):
        monitor = MonitoringBlock(alpha=0.4)
        monitor.update("k", counters(valu_busy=100.0))
        monitor.reset_kernel("k")
        assert monitor.current("k") is None
        fresh = monitor.update("k", counters(valu_busy=10.0))
        assert fresh["VALUBusy"] == pytest.approx(10.0)

    def test_reset_all(self):
        monitor = MonitoringBlock()
        monitor.update("k", counters())
        monitor.reset()
        assert monitor.current("k") is None

    def test_alpha_one_disables_smoothing(self):
        monitor = MonitoringBlock(alpha=1.0)
        monitor.update("k", counters(valu_busy=100.0))
        smoothed = monitor.update("k", counters(valu_busy=0.0))
        assert smoothed["VALUBusy"] == pytest.approx(0.0)

    def test_rejects_bad_alpha(self):
        with pytest.raises(PolicyError):
            MonitoringBlock(alpha=0.0)
        with pytest.raises(PolicyError):
            MonitoringBlock(alpha=1.5)


class TestPhaseDetector:
    def test_first_observation_is_a_phase_change(self):
        detector = PhaseDetector()
        assert detector.phase_changed("k", counters())

    def test_identical_counters_are_stable(self):
        detector = PhaseDetector()
        detector.phase_changed("k", counters())
        assert not detector.phase_changed("k", counters())

    def test_instruction_swing_triggers(self):
        # Figure 14: Graph500's instruction totals swing iteration to
        # iteration — exactly what the detector watches.
        detector = PhaseDetector(threshold=0.10)
        detector.phase_changed("k", counters(valu_insts=100.0))
        assert detector.phase_changed("k", counters(valu_insts=150.0))

    def test_small_drift_below_threshold_is_stable(self):
        detector = PhaseDetector(threshold=0.10)
        detector.phase_changed("k", counters(valu_insts=100.0))
        assert not detector.phase_changed("k", counters(valu_insts=105.0))

    def test_divergence_change_triggers(self):
        detector = PhaseDetector()
        detector.phase_changed("k", counters(utilization=90.0))
        assert detector.phase_changed("k", counters(utilization=50.0))

    def test_busy_fraction_change_does_not_trigger(self):
        # VALUBusy moves with the hardware configuration; the detector
        # must ignore it (the isolation guarantee of Algorithm 1).
        detector = PhaseDetector()
        detector.phase_changed("k", counters(valu_busy=100.0))
        assert not detector.phase_changed("k", counters(valu_busy=10.0))

    def test_kernels_independent(self):
        detector = PhaseDetector()
        detector.phase_changed("a", counters(valu_insts=100.0))
        # First observation of "b" is a phase change regardless of "a".
        assert detector.phase_changed("b", counters(valu_insts=100.0))

    def test_reset(self):
        detector = PhaseDetector()
        detector.phase_changed("k", counters())
        detector.reset()
        assert detector.phase_changed("k", counters())

    def test_rejects_bad_threshold(self):
        with pytest.raises(PolicyError):
            PhaseDetector(threshold=0.0)

    def test_identity_vector_is_scale_invariant(self):
        # Doubling the launched work at the same per-item mix yields the
        # same identity: sensitivities are intensive properties.
        small = PhaseDetector.identity_of(counters(valu_insts=100.0))
        large = PhaseDetector.identity_of(PerfCounters(
            valu_utilization=90.0, valu_busy=50.0, mem_unit_busy=40.0,
            mem_unit_stalled=5.0, write_unit_stalled=2.0, ic_activity=0.3,
            norm_vgpr=0.25, norm_sgpr=0.2,
            valu_insts_millions=200.0, vfetch_insts_millions=20.0,
            vwrite_insts_millions=10.0,
        ))
        assert small == pytest.approx(large)

    def test_identity_vector_contents(self):
        identity = PhaseDetector.identity_of(counters(
            valu_insts=100.0, utilization=88.0, vgpr=0.5
        ))
        assert identity[0] == pytest.approx(10.0 / 100.0)   # fetch/valu
        assert identity[1] == pytest.approx(5.0 / 100.0)    # write/valu
        assert identity[2] == pytest.approx(88.0)
        assert identity[3] == pytest.approx(0.5)
