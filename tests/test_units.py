"""Unit tests for :mod:`repro.units`."""

import pytest

from repro import units


class TestFrequencyConversions:
    def test_mhz_constant(self):
        assert units.MHZ == 1.0e6

    def test_ghz_is_thousand_mhz(self):
        assert units.GHZ == 1000 * units.MHZ

    def test_hz_to_mhz(self):
        assert units.hz_to_mhz(925e6) == pytest.approx(925.0)

    def test_mhz_to_hz(self):
        assert units.mhz_to_hz(475.0) == pytest.approx(475e6)

    def test_roundtrip(self):
        assert units.hz_to_mhz(units.mhz_to_hz(1375.0)) == pytest.approx(1375.0)


class TestBandwidthConversions:
    def test_gb_per_s_is_decimal(self):
        # Vendor bandwidth units are decimal GB, not GiB.
        assert units.GB_PER_S == 1.0e9

    def test_bytes_to_gb(self):
        assert units.bytes_per_s_to_gb_per_s(264e9) == pytest.approx(264.0)

    def test_gb_to_bytes(self):
        assert units.gb_per_s_to_bytes_per_s(90.0) == pytest.approx(90e9)

    def test_roundtrip(self):
        assert units.bytes_per_s_to_gb_per_s(
            units.gb_per_s_to_bytes_per_s(123.4)
        ) == pytest.approx(123.4)


class TestCapacityConstants:
    def test_kb_is_binary(self):
        assert units.KB == 1024.0

    def test_mb(self):
        assert units.MB == 1024.0 ** 2

    def test_gb(self):
        assert units.GB == 1024.0 ** 3


class TestTimeAndEnergy:
    def test_ns(self):
        assert 350 * units.NS == pytest.approx(3.5e-7)

    def test_seconds_to_ms(self):
        assert units.seconds_to_ms(0.0125) == pytest.approx(12.5)

    def test_joules_to_millijoules(self):
        assert units.joules_to_millijoules(0.5) == pytest.approx(500.0)
