"""Parallel fan-out: ordering, error propagation, result invariance."""

from __future__ import annotations

import threading

import pytest

from repro.analysis.evaluation import EvaluationHarness
from repro.errors import AnalysisError
from repro.experiments.context import ExperimentContext
from repro.runtime.parallel import fan_out
from repro.sensitivity.dataset import build_dataset


def test_fan_out_preserves_item_order():
    items = list(range(40))
    assert fan_out(lambda x: x * x, items, jobs=8) == [x * x for x in items]


def test_fan_out_serial_and_parallel_agree():
    items = ["a", "bb", "ccc"]
    assert fan_out(len, items, jobs=1) == fan_out(len, items, jobs=3)


def test_fan_out_actually_runs_concurrently():
    barrier = threading.Barrier(4, timeout=10)

    def rendezvous(_):
        barrier.wait()  # only passes if 4 workers run at once
        return True

    assert fan_out(rendezvous, range(4), jobs=4) == [True] * 4


def test_fan_out_propagates_errors():
    def explode(x):
        if x == 2:
            raise ValueError("boom")
        return x

    with pytest.raises(ValueError, match="boom"):
        fan_out(explode, range(4), jobs=4)


def test_fan_out_rejects_bad_jobs():
    with pytest.raises(AnalysisError):
        fan_out(lambda x: x, [1], jobs=0)


def test_build_dataset_invariant_under_jobs(platform, context):
    """The training set is identical for any thread count."""
    apps = context.applications[:4]
    serial = build_dataset(platform, apps, config_stride=32, jobs=1)
    parallel = build_dataset(platform, apps, config_stride=32, jobs=4)
    assert serial.kernel_names == parallel.kernel_names
    assert serial.compute_targets == parallel.compute_targets
    assert serial.bandwidth_targets == parallel.bandwidth_targets
    assert serial.rows == parallel.rows


def test_parallel_evaluation_matches_serial(context):
    """Per-app fresh policies + fan-out == the serial shared-policy loop."""
    ctx = ExperimentContext(platform=context.platform)
    apps = [context.application("MaxFlops"), context.application("CoMD"),
            context.application("Sort")]
    harness = EvaluationHarness(ctx.platform, ctx.baseline_policy())

    serial = harness.evaluate(apps, [ctx.harmonia_policy(), ctx.oracle_policy()])
    parallel = harness.evaluate_parallel(
        apps,
        baseline_factory=ctx.baseline_policy,
        policy_factories=[ctx.harmonia_policy, ctx.oracle_policy],
        jobs=3,
    )

    assert len(serial.comparisons) == len(parallel.comparisons)
    for s, p in zip(serial.comparisons, parallel.comparisons):
        assert (s.application, s.policy) == (p.application, p.policy)
        assert s.candidate.time == p.candidate.time
        assert s.candidate.energy == p.candidate.energy
        assert s.baseline.time == p.baseline.time


def test_context_jobs_validation():
    with pytest.raises(ValueError):
        ExperimentContext(jobs=0)
    assert ExperimentContext(jobs=3).jobs == 3
