"""Parallel fan-out: ordering, error propagation, result invariance."""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.analysis.evaluation import EvaluationHarness
from repro.errors import AnalysisError
from repro.experiments.context import ExperimentContext
from repro.runtime.parallel import (
    WorkerBudget,
    active_budget,
    budget_scope,
    fan_out,
    resolve_jobs,
)
from repro.sensitivity.dataset import build_dataset


def test_fan_out_preserves_item_order():
    items = list(range(40))
    assert fan_out(lambda x: x * x, items, jobs=8) == [x * x for x in items]


def test_fan_out_serial_and_parallel_agree():
    items = ["a", "bb", "ccc"]
    assert fan_out(len, items, jobs=1) == fan_out(len, items, jobs=3)


def test_fan_out_actually_runs_concurrently():
    barrier = threading.Barrier(4, timeout=10)

    def rendezvous(_):
        barrier.wait()  # only passes if 4 workers run at once
        return True

    assert fan_out(rendezvous, range(4), jobs=4) == [True] * 4


def test_fan_out_propagates_errors():
    def explode(x):
        if x == 2:
            raise ValueError("boom")
        return x

    with pytest.raises(ValueError, match="boom"):
        fan_out(explode, range(4), jobs=4)


def test_fan_out_names_the_failing_item():
    class Item:
        def __init__(self, name):
            self.name = name

    def explode(item):
        if item.name == "BPT":
            raise ValueError("boom")
        return item.name

    items = [Item("CoMD"), Item("BPT"), Item("Sort")]
    for jobs in (1, 3):
        with pytest.raises(ValueError) as excinfo:
            fan_out(explode, items, jobs=jobs)
        notes = "\n".join(getattr(excinfo.value, "__notes__", ()))
        assert "item 2/3" in notes
        assert "BPT" in notes


def test_fan_out_explicit_labels_win():
    with pytest.raises(RuntimeError) as excinfo:
        fan_out(lambda x: (_ for _ in ()).throw(RuntimeError("die")),
                [10, 20], jobs=2, labels=["first", "second"])
    notes = "\n".join(getattr(excinfo.value, "__notes__", ()))
    assert "first" in notes


def test_fan_out_rejects_mismatched_labels():
    with pytest.raises(AnalysisError):
        fan_out(lambda x: x, [1, 2, 3], labels=["only-one"])


def test_fan_out_rejects_negative_jobs():
    with pytest.raises(AnalysisError):
        fan_out(lambda x: x, [1], jobs=-1)


def test_jobs_zero_means_auto():
    assert resolve_jobs(0) == (os.cpu_count() or 1)
    assert resolve_jobs(3) == 3
    with pytest.raises(AnalysisError):
        resolve_jobs(-2)
    # jobs=0 is accepted end to end, not just by the resolver.
    assert fan_out(lambda x: x + 1, [1, 2, 3], jobs=0) == [2, 3, 4]
    assert ExperimentContext(jobs=0).jobs == (os.cpu_count() or 1)


def test_worker_budget_borrow_and_release():
    budget = WorkerBudget(3)
    assert budget.available() == 3
    budget.acquire()
    assert budget.borrow(5) == 2  # only 2 left; borrowing never blocks
    assert budget.borrow(1) == 0
    budget.release(2)
    budget.release()
    assert budget.available() == 3
    with pytest.raises(AnalysisError):
        budget.release(1)  # over-release must be loud


def test_budget_scope_bounds_inner_fan_out():
    """Inside a 1-permit scope, a jobs=4 fan-out degrades to serial."""
    live = 0
    peak = 0
    lock = threading.Lock()

    def work(_):
        nonlocal live, peak
        with lock:
            live += 1
            peak = max(peak, live)
        time.sleep(0.01)
        with lock:
            live -= 1
        return True

    budget = WorkerBudget(1)
    budget.acquire()  # the caller's own thread holds the one permit
    with budget_scope(budget):
        assert active_budget() is budget
        assert fan_out(work, range(6), jobs=4) == [True] * 6
    budget.release()
    assert active_budget() is None
    assert peak == 1
    assert budget.available() == 1


def test_budget_scope_lends_spare_permits():
    barrier = threading.Barrier(3, timeout=10)

    def rendezvous(_):
        barrier.wait()  # passes only if 3 workers run at once
        return True

    budget = WorkerBudget(4)
    budget.acquire()
    with budget_scope(budget):
        assert fan_out(rendezvous, range(3), jobs=8) == [True] * 3
    budget.release()
    assert budget.available() == 4


def test_build_dataset_invariant_under_jobs(platform, context):
    """The training set is identical for any thread count."""
    apps = context.applications[:4]
    serial = build_dataset(platform, apps, config_stride=32, jobs=1)
    parallel = build_dataset(platform, apps, config_stride=32, jobs=4)
    assert serial.kernel_names == parallel.kernel_names
    assert serial.compute_targets == parallel.compute_targets
    assert serial.bandwidth_targets == parallel.bandwidth_targets
    assert serial.rows == parallel.rows


def test_parallel_evaluation_matches_serial(context):
    """Per-app fresh policies + fan-out == the serial shared-policy loop."""
    ctx = ExperimentContext(platform=context.platform)
    apps = [context.application("MaxFlops"), context.application("CoMD"),
            context.application("Sort")]
    harness = EvaluationHarness(ctx.platform, ctx.baseline_policy())

    serial = harness.evaluate(apps, [ctx.harmonia_policy(), ctx.oracle_policy()])
    parallel = harness.evaluate_parallel(
        apps,
        baseline_factory=ctx.baseline_policy,
        policy_factories=[ctx.harmonia_policy, ctx.oracle_policy],
        jobs=3,
    )

    assert len(serial.comparisons) == len(parallel.comparisons)
    for s, p in zip(serial.comparisons, parallel.comparisons):
        assert (s.application, s.policy) == (p.application, p.policy)
        assert s.candidate.time == p.candidate.time
        assert s.candidate.energy == p.candidate.energy
        assert s.baseline.time == p.baseline.time


def test_context_jobs_validation():
    with pytest.raises(ValueError):
        ExperimentContext(jobs=-1)
    assert ExperimentContext(jobs=3).jobs == 3


class TestFanOutSpanPropagation:
    """fan_out carries the submitting thread's span context to workers."""

    def test_pool_workers_inherit_the_caller_span(self):
        from repro.telemetry import Telemetry
        from repro.telemetry.spans import SpanTracker, ambient_telemetry

        telemetry = Telemetry(spans=SpanTracker())

        def work(item):
            with ambient_telemetry().span("item", value=item):
                return item

        with telemetry.span("batch"):
            fan_out(work, list(range(6)), jobs=3)
        records = telemetry.spans.records()
        batch = next(r for r in records if r.name == "batch")
        items = [r for r in records if r.name == "item"]
        assert len(items) == 6
        assert all(r.parent_id == batch.span_id for r in items)

    def test_metric_counts_identical_serial_vs_pooled(self):
        from repro.telemetry import Telemetry
        from repro.telemetry.spans import SpanTracker, ambient_telemetry

        def run(jobs):
            telemetry = Telemetry(spans=SpanTracker())

            def work(item):
                ambient_telemetry().metrics.counter(
                    "items_total").inc(kind="fan")
                return item

            with telemetry.span("batch"):
                fan_out(work, list(range(8)), jobs=jobs)
            return telemetry.metrics.as_dict()

        assert run(1) == run(4)
