"""Unit tests for :mod:`repro.sensitivity.measurement` (Section 4.1)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import AnalysisError
from repro.sensitivity.measurement import (
    measure_sensitivities,
    sensitivity_between,
)
from repro.workloads.registry import get_kernel


class TestSensitivityBetween:
    def test_perfect_scaling_is_one(self):
        # P proportional to x: time halves when x doubles.
        assert sensitivity_between(2.0, 1.0, 1.0, 2.0) == pytest.approx(1.0)

    def test_no_scaling_is_zero(self):
        assert sensitivity_between(1.0, 1.0, 1.0, 2.0) == pytest.approx(0.0)

    def test_inverse_scaling_is_negative(self):
        # Faster at the LOW setting (the BPT thrashing case).
        assert sensitivity_between(0.8, 1.0, 1.0, 2.0) < 0.0

    def test_partial_scaling_between_zero_and_one(self):
        value = sensitivity_between(1.5, 1.0, 1.0, 2.0)
        assert 0.0 < value < 1.0

    @pytest.mark.parametrize("t_lo,t_hi,x_lo,x_hi", [
        (0.0, 1.0, 1.0, 2.0),
        (1.0, -1.0, 1.0, 2.0),
        (1.0, 1.0, 0.0, 2.0),
        (1.0, 1.0, 1.0, 1.0),
    ])
    def test_invalid_inputs(self, t_lo, t_hi, x_lo, x_hi):
        with pytest.raises(AnalysisError):
            sensitivity_between(t_lo, t_hi, x_lo, x_hi)

    @given(
        scale=st.floats(min_value=1.0, max_value=10.0),
        x_ratio=st.floats(min_value=1.1, max_value=10.0),
    )
    def test_pure_scaling_always_one(self, scale, x_ratio):
        # time = scale / x exactly.
        t_lo = scale / 1.0
        t_hi = scale / x_ratio
        assert sensitivity_between(t_lo, t_hi, 1.0, x_ratio) == \
            pytest.approx(1.0)


class TestMeasuredSensitivities:
    """Paper characterization anchors on the simulated test bed."""

    def test_maxflops(self, platform):
        m = measure_sensitivities(platform, get_kernel("MaxFlops.MaxFlops").base)
        assert m.compute > 0.9          # compute stress benchmark
        assert m.bandwidth < 0.1        # bandwidth-insensitive

    def test_devicememory(self, platform):
        m = measure_sensitivities(
            platform, get_kernel("DeviceMemory.DeviceMemory").base
        )
        assert m.bandwidth > 0.9        # memory stress benchmark
        # Figure 9: also compute-frequency sensitive (clock crossing).
        assert m.f_cu > 0.5

    def test_sort_bottomscan(self, platform):
        # Figure 7: 30% occupancy -> bandwidth-insensitive;
        # Figure 8: millions of instructions -> frequency-sensitive.
        m = measure_sensitivities(platform, get_kernel("Sort.BottomScan").base)
        assert m.bandwidth < 0.3
        assert m.f_cu > 0.7

    def test_comd_advance_velocity(self, platform):
        # Figure 7: 100% occupancy -> strongly bandwidth-sensitive.
        m = measure_sensitivities(
            platform, get_kernel("CoMD.AdvanceVelocity").base
        )
        assert m.bandwidth > 0.8

    def test_srad_prepare(self, platform):
        # Figure 8: overhead-dominated -> insensitive to everything.
        m = measure_sensitivities(platform, get_kernel("SRAD.Prepare").base)
        assert m.f_cu < 0.3
        assert m.bandwidth < 0.3

    def test_streamcluster_truly_compute_sensitive(self, platform):
        # Section 7.1's binning-edge story requires a truly high compute
        # sensitivity that the predictor narrowly underestimates.
        m = measure_sensitivities(
            platform, get_kernel("Streamcluster.ComputeCost").base
        )
        assert m.compute > 0.9

    def test_aggregate_is_mean_of_cu_and_frequency(self, platform):
        m = measure_sensitivities(platform, get_kernel("MaxFlops.MaxFlops").base)
        assert m.compute == pytest.approx(0.5 * (m.cu + m.f_cu))

    def test_kernel_name_recorded(self, platform):
        m = measure_sensitivities(platform, get_kernel("SRAD.Prepare").base)
        assert m.kernel_name == "SRAD.Prepare"
