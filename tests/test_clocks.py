"""Unit tests for :mod:`repro.gpu.clocks` (Section 3.5, Figure 9)."""

import pytest

from repro.errors import CalibrationError
from repro.gpu.architecture import HD7970
from repro.gpu.clocks import ClockDomainModel
from repro.units import MHZ


class TestCrossingModel:
    def test_bandwidth_scales_with_compute_clock(self):
        model = ClockDomainModel(crossing_bytes_per_cycle=256.0)
        assert model.crossing_bandwidth(600 * MHZ) == \
            pytest.approx(2 * model.crossing_bandwidth(300 * MHZ))

    def test_rejects_non_positive_width(self):
        with pytest.raises(CalibrationError):
            ClockDomainModel(crossing_bytes_per_cycle=0.0)

    def test_rejects_non_positive_frequency(self):
        model = ClockDomainModel(crossing_bytes_per_cycle=256.0)
        with pytest.raises(CalibrationError):
            model.crossing_bandwidth(0.0)


class TestCalibration:
    def test_saturates_peak_bandwidth_at_dpm2(self):
        # At the 925 MHz calibration point the crossing delivers exactly
        # the 264 GB/s peak DRAM bandwidth.
        model = ClockDomainModel.calibrated_for(HD7970)
        assert model.crossing_bandwidth(925 * MHZ) == pytest.approx(264e9)

    def test_throttles_below_dpm2(self):
        # Section 3.5: slowing the compute clock reduces effective DRAM
        # bandwidth for miss-heavy kernels.
        model = ClockDomainModel.calibrated_for(HD7970)
        assert model.crossing_bandwidth(300 * MHZ) < 264e9 * 0.4

    def test_headroom_above_dpm2(self):
        model = ClockDomainModel.calibrated_for(HD7970)
        assert model.crossing_bandwidth(1000 * MHZ) > 264e9

    def test_custom_saturation_point(self):
        model = ClockDomainModel.calibrated_for(
            HD7970, saturating_f_cu=500 * MHZ
        )
        assert model.crossing_bandwidth(500 * MHZ) == pytest.approx(264e9)
