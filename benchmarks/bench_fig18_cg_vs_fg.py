"""Figure 18: relative contributions of CG vs FG tuning."""

from repro.experiments import fig18_cg_vs_fg as experiment


def test_fig18_cg_vs_fg(benchmark, ctx, emit):
    result = benchmark.pedantic(
        experiment.run, args=(ctx,), rounds=1, iterations=1
    )
    emit("fig18_cg_vs_fg", experiment.format_report(result))
    by_app = {r.application: r for r in result.contributions}
    # Paper: FG rescues CG outliers (SPMV); XSBench is CG-dominated.
    assert by_app["SPMV"].fg_contribution > 0.02
    assert abs(by_app["XSBench"].fg_contribution) < 0.02
    assert result.median_settle_iterations() <= 20
