"""Shared benchmark fixtures and report emission.

Every benchmark regenerates one of the paper's tables or figures: it times
the experiment entry point with ``pytest-benchmark``, prints the same
rows/series the paper reports, and writes them under
``benchmarks/reports/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.context import ExperimentContext

REPORT_DIR = pathlib.Path(__file__).parent / "reports"


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    """Shared experiment context for all benchmarks."""
    return ExperimentContext()


@pytest.fixture(scope="session")
def emit():
    """Callable writing a named report file and echoing it to stdout."""
    REPORT_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        path = REPORT_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[report written to {path}]")

    return _emit
