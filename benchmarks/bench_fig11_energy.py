"""Figure 11: overall energy gain from Harmonia."""

from repro.experiments import fig10_13_evaluation as experiment
from repro.workloads.registry import STRESS_BENCHMARKS, application_names


def test_fig11_energy(benchmark, ctx, emit):
    result = benchmark.pedantic(
        experiment.run, args=(ctx,), rounds=1, iterations=1
    )
    emit("fig11_energy", experiment.format_fig11(result))
    summary = result.summary
    assert summary.geomean_energy("harmonia") > 0.05
    # Paper: CG and FG+CG energy savings nearly identical (outside the
    # Streamcluster performance story).
    for app in application_names():
        if app in ("Streamcluster",) + tuple(STRESS_BENCHMARKS):
            continue
        cg = summary.comparison(app, "cg-only").energy_improvement
        hm = summary.comparison(app, "harmonia").energy_improvement
        assert abs(hm - cg) < 0.20
