"""Figure 4: DeviceMemory card power across compute configurations."""

from repro.experiments import fig04_fig05_power_ranges as experiment


def test_fig04_compute_power_range(benchmark, ctx, emit):
    result = benchmark(experiment.run_fig04, ctx)
    emit("fig04_compute_power", experiment.format_report(result, "70%"))
    # Paper: normalized board power varies by about 70%.
    assert 0.45 < result.variation < 0.85
