"""Section 7.2: predictor accuracy and the compute-DVFS-only comparison."""

from repro.experiments import sec72_variants as experiment


def test_sec72_variants(benchmark, ctx, emit):
    result = benchmark.pedantic(
        experiment.run, args=(ctx,), rounds=1, iterations=1
    )
    emit("sec72_variants", experiment.format_report(result))
    # Paper: frequency-only scaling achieves a small fraction of
    # Harmonia's gain, with ~1% performance loss.
    assert result.dvfs_only_ed2 < 0.75 * result.harmonia_ed2
    assert -0.03 < result.dvfs_only_performance < 0.005
    assert result.bandwidth_prediction_error < 0.15
    assert result.compute_prediction_error < 0.15
