"""Figure 17: GPU vs memory power split under baseline and Harmonia."""

from repro.experiments import fig17_power_sharing as experiment


def test_fig17_power_sharing(benchmark, ctx, emit):
    result = benchmark.pedantic(
        experiment.run, args=(ctx,), rounds=1, iterations=1
    )
    emit("fig17_power_sharing", experiment.format_report(result))
    # Paper: ~64% of the savings from compute, ~36% from memory.
    gpu_share, mem_share = result.savings_split()
    assert gpu_share > mem_share > 0.05
