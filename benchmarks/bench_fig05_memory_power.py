"""Figure 5: MaxFlops card power across memory configurations."""

from repro.experiments import fig04_fig05_power_ranges as experiment


def test_fig05_memory_power_range(benchmark, ctx, emit):
    result = benchmark(experiment.run_fig05, ctx)
    emit("fig05_memory_power", experiment.format_report(result, "10%"))
    # Paper: ~10% power variation at fixed memory voltage.
    assert 0.04 < result.variation < 0.15
