"""Extension: the Section 7.2 memory-bus-voltage-scaling what-if."""

from repro.experiments import ext_memory_voltage as experiment


def test_ext_memory_voltage(benchmark, ctx, emit):
    result = benchmark.pedantic(
        experiment.run, args=(ctx,), rounds=1, iterations=1
    )
    emit("ext_memory_voltage", experiment.format_report(result))
    # The what-if must unlock additional savings, concentrated on the
    # workloads whose memory bus gets slowed (paper Section 7.2).
    assert result.ed2_gain_from_scaling > 0.0
    assert result.power_gain_from_scaling > 0.0
    by_app = {r.application: r for r in result.rows}
    assert by_app["Sort"].ed2_scaled > by_app["Sort"].ed2_fixed
    assert by_app["MaxFlops"].ed2_scaled > by_app["MaxFlops"].ed2_fixed
