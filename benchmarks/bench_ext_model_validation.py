"""Extension: analytical-model cross-validation against the event sim."""

from repro.experiments import ext_model_validation as experiment


def test_ext_model_validation(benchmark, ctx, emit):
    result = benchmark.pedantic(
        experiment.run, args=(ctx,), rounds=1, iterations=1
    )
    emit("ext_model_validation", experiment.format_report(result))
    # The two independently implemented execution models must agree on
    # the performance surfaces the reproduction rests on.
    assert result.overall_mean_deviation() < 0.10
    assert result.min_correlation() > 0.75
    # And agree tightly on the stress benchmarks that anchor Figure 3.
    by_kernel = {r.kernel: r for r in result.rows}
    assert by_kernel["MaxFlops.MaxFlops"].mean_abs_deviation < 0.02
    assert by_kernel["DeviceMemory.DeviceMemory"].mean_abs_deviation < 0.05
