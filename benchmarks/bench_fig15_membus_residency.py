"""Figure 15: memory bus frequency residency in Graph500."""

from repro.experiments import fig14_16_graph500 as experiment


def test_fig15_membus_residency(benchmark, ctx, emit):
    result = benchmark.pedantic(
        experiment.run, args=(ctx,), rounds=1, iterations=1
    )
    emit("fig15_membus_residency", experiment.format_report(result))
    # Paper: the bus dithers between frequencies as bandwidth sensitivity
    # changes between medium and low across phases.
    assert result.mem_frequencies_visited() >= 2
    fractions = result.mem_residency.fractions
    assert all(0.0 < f <= 1.0 for f in fractions.values())
    assert abs(sum(fractions.values()) - 1.0) < 1e-9
