"""Extension: per-phase configuration recall on recurring BFS traversals."""

from repro.experiments import ext_phase_memory as experiment


def test_ext_phase_memory(benchmark, ctx, emit):
    result = benchmark.pedantic(
        experiment.run, args=(ctx,), rounds=1, iterations=1
    )
    emit("ext_phase_memory", experiment.format_report(result))
    # Recall must fire on the recurring traversals, and the validation
    # guard must keep it from doing harm (on this substrate the CG jump is
    # already near-optimal per phase, so the expected effect is neutral).
    assert result.recalls >= 2
    assert result.distinct_phases >= 2
    assert result.ed2_with > result.ed2_without - 0.02
    assert result.perf_with >= result.perf_without - 0.01
