"""Append-only benchmark trend ledger with regression gates.

Every committed ``BENCH_*.json`` is a single snapshot that each bench
run overwrites — fine for "what is the speedup now", useless for "did
PR N make it worse". The ledger keeps the history: one JSONL line per
ingested bench run, carrying the benchmark name, an ISO-8601 timestamp,
an **environment fingerprint** (Python/numpy versions, platform, core
count — so a slowdown explained by a machine change is visible as such)
and every top-level numeric scalar of the bench JSON.

Gates turn the history into a CI signal: each benchmark has rules
(:data:`DEFAULT_GATES`) naming the metrics that must not regress —
warm-start and pipeline warm speedups, sweep throughput, telemetry
overhead ratios. The baseline is the **median of a trailing window** of
prior entries on the same ledger, so one lucky (or unlucky) run cannot
move the bar, and the very first entry simply seeds the history.

Consumers: ``python -m repro bench-report`` renders trends and gate
status; ``tools/bench_gate.py`` is the CI face (``ingest`` + ``check``,
exit 1 on regression).
"""

from __future__ import annotations

import json
import os
import platform as platform_module
import re
import sys
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from statistics import median
from typing import Any, Dict, List, Mapping, Optional, Sequence

#: Version stamped into every ledger line.
LEDGER_SCHEMA_VERSION = 1

#: Gate outcome states.
STATUS_OK = "ok"
STATUS_SEEDED = "seeded"
STATUS_REGRESSION = "regression"
STATUS_MISSING = "missing"

_REPO_ROOT = Path(__file__).resolve().parent.parent

#: ``BENCH_<name>.json`` → benchmark name.
_BENCH_FILE_RE = re.compile(r"^BENCH_(?P<name>[A-Za-z0-9_.-]+)\.json$")


def default_ledger_path() -> Path:
    """The ledger location used when no ``--ledger`` is given."""
    return _REPO_ROOT / "benchmarks" / "ledger.jsonl"


def env_fingerprint() -> Dict[str, Any]:
    """The environment facts recorded with every entry.

    Enough to tell "the code got slower" apart from "the machine
    changed": interpreter and numpy versions, OS/arch, core count.
    """
    try:
        import numpy
        numpy_version = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a hard dep here
        numpy_version = None
    return {
        "python": platform_module.python_version(),
        "platform": platform_module.platform(),
        "machine": platform_module.machine(),
        "cpu_count": os.cpu_count(),
        "numpy": numpy_version,
    }


def extract_metrics(data: Mapping[str, Any]) -> Dict[str, float]:
    """The top-level numeric scalars of one bench JSON payload.

    Nested tables (per-kernel rows, node breakdowns) are trend noise at
    ledger granularity; the headline scalars are what gates act on.
    """
    metrics: Dict[str, float] = {}
    for key, value in data.items():
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            metrics[key] = float(value)
    return metrics


@dataclass(frozen=True)
class LedgerEntry:
    """One ingested benchmark run."""

    bench: str
    recorded_at: str
    metrics: Dict[str, float]
    env: Dict[str, Any] = field(default_factory=dict)
    source: str = ""
    schema: int = LEDGER_SCHEMA_VERSION

    def to_record(self) -> Dict[str, Any]:
        """The JSONL wire form."""
        return {
            "schema": self.schema,
            "bench": self.bench,
            "recorded_at": self.recorded_at,
            "metrics": self.metrics,
            "env": self.env,
            "source": self.source,
        }

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "LedgerEntry":
        """Rebuild an entry from its JSONL form."""
        return cls(
            bench=str(record["bench"]),
            recorded_at=str(record.get("recorded_at", "")),
            metrics={str(k): float(v)
                     for k, v in dict(record.get("metrics", {})).items()},
            env=dict(record.get("env", {})),
            source=str(record.get("source", "")),
            schema=int(record.get("schema", LEDGER_SCHEMA_VERSION)),
        )


def append_entry(path, entry: LedgerEntry) -> None:
    """Append one entry to the ledger, durably (flush + fsync)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a") as handle:
        handle.write(json.dumps(entry.to_record(), sort_keys=True) + "\n")
        handle.flush()
        os.fsync(handle.fileno())


def read_entries(path) -> List[LedgerEntry]:
    """All ledger entries in append order.

    Mirrors the trace loader's crash tolerance: a truncated **final**
    line is dropped silently, malformed JSON earlier raises.
    """
    path = Path(path)
    if not path.exists():
        return []
    with open(path) as handle:
        lines = [(number, line.strip())
                 for number, line in enumerate(handle, start=1)
                 if line.strip()]
    entries: List[LedgerEntry] = []
    for position, (line_number, line) in enumerate(lines):
        try:
            entries.append(LedgerEntry.from_record(json.loads(line)))
        except json.JSONDecodeError as error:
            if position == len(lines) - 1:
                break  # truncated tail of a crashed writer
            raise ValueError(
                f"{path}:{line_number}: not valid JSON ({error})"
            ) from None
    return entries


def bench_name_for(path) -> str:
    """The benchmark name a ``BENCH_<name>.json`` path implies."""
    match = _BENCH_FILE_RE.match(Path(path).name)
    if match:
        return match.group("name")
    return Path(path).stem


def ingest_file(ledger_path, bench_json_path, bench: Optional[str] = None,
                recorded_at: Optional[str] = None) -> LedgerEntry:
    """Ingest one bench JSON into the ledger and return the new entry.

    Args:
        ledger_path: the ledger JSONL to append to.
        bench_json_path: a ``BENCH_*.json`` produced by a bench run.
        bench: benchmark name override (default: derived from the
            filename).
        recorded_at: ISO timestamp override (default: now, UTC).

    Raises:
        ValueError: when the bench JSON is unreadable or holds no
            numeric scalars (nothing to trend).
    """
    bench_json_path = Path(bench_json_path)
    try:
        with open(bench_json_path) as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise ValueError(f"unreadable bench JSON {bench_json_path}: {error}")
    if not isinstance(data, dict):
        raise ValueError(f"{bench_json_path}: expected a JSON object")
    metrics = extract_metrics(data)
    if not metrics:
        raise ValueError(f"{bench_json_path}: no numeric scalars to ledger")
    entry = LedgerEntry(
        bench=bench if bench else bench_name_for(bench_json_path),
        recorded_at=(recorded_at if recorded_at
                     else datetime.now(timezone.utc).isoformat()),
        metrics=metrics,
        env=env_fingerprint(),
        source=str(bench_json_path.name),
    )
    append_entry(ledger_path, entry)
    return entry


# ---------------------------------------------------------------------------
# Gates


@dataclass(frozen=True)
class GateRule:
    """One regression rule over one ledger metric.

    Args:
        metric: the metric key inside ``LedgerEntry.metrics``.
        higher_is_better: direction of goodness (speedups: True,
            overhead ratios: False).
        max_regression: tolerated fractional slide versus the baseline
            (0.15 = fail when more than 15% worse than the median of
            the prior window).
        min_value: absolute floor — fail below it regardless of history.
        max_value: absolute ceiling — fail above it regardless of
            history (the telemetry null-overhead bound).
    """

    metric: str
    higher_is_better: bool = True
    max_regression: float = 0.15
    min_value: Optional[float] = None
    max_value: Optional[float] = None


#: Default per-benchmark gate rules, keyed by ledger bench name.
DEFAULT_GATES: Dict[str, List[GateRule]] = {
    "pipeline": [
        GateRule("warm_speedup", higher_is_better=True, max_regression=0.30),
    ],
    "warmstart": [
        GateRule("warm_speedup", higher_is_better=True, max_regression=0.30),
    ],
    "sweep": [
        GateRule("geomean_batch_speedup", higher_is_better=True,
                 max_regression=0.25),
    ],
    "montecarlo": [
        GateRule("geomean_noisy_batch_speedup", higher_is_better=True,
                 max_regression=0.25),
    ],
    "controller": [
        # The batched session engine's contract: at least 5x over the
        # scalar controller loop on the full run, bitwise-identical.
        GateRule("geomean_controller_speedup", higher_is_better=True,
                 max_regression=0.25, min_value=5.0),
    ],
    "eventsim": [
        # The batched lockstep engine's contract: at least 10x over the
        # scalar event loop on fleet-class lane counts, bitwise-identical.
        # The validation-node grid is floored lower — at 675 lanes the
        # per-iteration dispatch cost is a constant ~half of every step.
        GateRule("geomean_fleet_speedup", higher_is_better=True,
                 max_regression=0.25, min_value=10.0),
        GateRule("node_speedup", higher_is_better=True,
                 max_regression=0.25, min_value=5.0),
    ],
    "telemetry": [
        # The hard contract: telemetry off must stay within 2% of an
        # uninstrumented run, whatever the history says.
        GateRule("null_overhead_ratio", higher_is_better=False,
                 max_regression=0.10, max_value=1.02),
        GateRule("active_overhead_ratio", higher_is_better=False,
                 max_regression=0.50, max_value=10.0),
    ],
}


@dataclass(frozen=True)
class GateResult:
    """Outcome of one gate rule on the latest entry of one benchmark."""

    bench: str
    metric: str
    status: str
    current: Optional[float]
    baseline: Optional[float]
    detail: str


def _entries_for(entries: Sequence[LedgerEntry],
                 bench: str) -> List[LedgerEntry]:
    return [entry for entry in entries if entry.bench == bench]


def evaluate_gates(entries: Sequence[LedgerEntry], bench: str,
                   window: int = 5,
                   gates: Optional[Mapping[str, List[GateRule]]] = None,
                   ) -> List[GateResult]:
    """Run ``bench``'s gate rules against its latest ledger entry.

    The baseline for the relative rule is the **median** of up to
    ``window`` entries immediately preceding the latest one. With no
    prior history the relative rule passes as ``seeded`` (absolute
    floors/ceilings still apply).
    """
    rules = (gates if gates is not None else DEFAULT_GATES).get(bench, [])
    history = _entries_for(entries, bench)
    results: List[GateResult] = []
    if not history:
        return [GateResult(bench, rule.metric, STATUS_MISSING, None, None,
                           "no ledger entries")
                for rule in rules]
    latest = history[-1]
    prior = history[:-1][-window:] if len(history) > 1 else []
    for rule in rules:
        current = latest.metrics.get(rule.metric)
        if current is None:
            results.append(GateResult(
                bench, rule.metric, STATUS_MISSING, None, None,
                f"latest {bench} entry has no {rule.metric!r}"))
            continue
        prior_values = [entry.metrics[rule.metric] for entry in prior
                        if rule.metric in entry.metrics]
        baseline = median(prior_values) if prior_values else None

        if rule.min_value is not None and current < rule.min_value:
            results.append(GateResult(
                bench, rule.metric, STATUS_REGRESSION, current, baseline,
                f"{current:.4g} below absolute floor {rule.min_value:.4g}"))
            continue
        if rule.max_value is not None and current > rule.max_value:
            results.append(GateResult(
                bench, rule.metric, STATUS_REGRESSION, current, baseline,
                f"{current:.4g} above absolute ceiling "
                f"{rule.max_value:.4g}"))
            continue
        if baseline is None:
            results.append(GateResult(
                bench, rule.metric, STATUS_SEEDED, current, None,
                "first entry; history seeded"))
            continue
        if rule.higher_is_better:
            limit = baseline * (1.0 - rule.max_regression)
            regressed = current < limit
            direction = "below"
        else:
            limit = baseline * (1.0 + rule.max_regression)
            regressed = current > limit
            direction = "above"
        if regressed:
            results.append(GateResult(
                bench, rule.metric, STATUS_REGRESSION, current, baseline,
                f"{current:.4g} is {direction} the {rule.max_regression:.0%} "
                f"band around baseline {baseline:.4g} "
                f"(median of {len(prior_values)} prior)"))
        else:
            results.append(GateResult(
                bench, rule.metric, STATUS_OK, current, baseline,
                f"within {rule.max_regression:.0%} of baseline "
                f"{baseline:.4g}"))
    return results


def evaluate_all_gates(entries: Sequence[LedgerEntry], window: int = 5,
                       gates: Optional[Mapping[str, List[GateRule]]] = None,
                       ) -> List[GateResult]:
    """Gate results for every benchmark present in the ledger."""
    gate_map = gates if gates is not None else DEFAULT_GATES
    benches = sorted({entry.bench for entry in entries})
    results: List[GateResult] = []
    for bench in benches:
        if bench in gate_map:
            results.extend(evaluate_gates(entries, bench, window=window,
                                          gates=gate_map))
    return results


def format_trend_report(entries: Sequence[LedgerEntry],
                        window: int = 5) -> str:
    """Human-readable trend + gate report over the whole ledger."""
    if not entries:
        return "bench ledger: empty"
    benches = sorted({entry.bench for entry in entries})
    lines: List[str] = [
        f"bench ledger: {len(entries)} entries across "
        f"{len(benches)} benchmark(s)"
    ]
    for bench in benches:
        history = _entries_for(entries, bench)
        latest = history[-1]
        stamp = latest.recorded_at.split("T")[0] or "?"
        lines.append("")
        lines.append(f"{bench}: {len(history)} run(s), latest {stamp} "
                     f"(python {latest.env.get('python', '?')}, "
                     f"{latest.env.get('cpu_count', '?')} cores)")
        gated = {rule.metric for rule in DEFAULT_GATES.get(bench, [])}
        for metric in sorted(latest.metrics):
            trail = [entry.metrics[metric] for entry in history[-(window + 1):]
                     if metric in entry.metrics]
            trend = " -> ".join(f"{value:.4g}" for value in trail)
            marker = " [gated]" if metric in gated else ""
            lines.append(f"  {metric:<32s} {trend}{marker}")
        for result in evaluate_gates(entries, bench, window=window):
            lines.append(f"  gate {result.metric}: {result.status} "
                         f"({result.detail})")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:  # pragma: no cover
    """Tiny debug entry point: print the trend report."""
    path = argv[0] if argv else default_ledger_path()
    print(format_trend_report(read_entries(path)))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main(sys.argv[1:]))
