#!/usr/bin/env python
"""Cross-process warm-start benchmark for the persistent sweep store.

Runs the full ``reproduce`` pipeline twice in *separate interpreters*
sharing one store directory:

* **cold** — empty store: every surface is computed and written through,
* **warm** — populated store: surfaces are loaded instead of recomputed.

Each child times ``cli.main`` only (interpreter and import cost is the
same either way and excluded) and reports its sweep cache/store
statistics. The parent additionally verifies

* every report file is **byte-identical** between the cold and warm runs
  (the store must not change a single digit of any table), and
* a store round trip is **bitwise identical** to a freshly computed
  surface for all 25 kernels (``max_rel_divergence`` must be exactly 0).

Results land in machine-readable JSON (``BENCH_warmstart.json``)::

    PYTHONPATH=src python benchmarks/bench_reproduce_warmstart.py
    PYTHONPATH=src python benchmarks/bench_reproduce_warmstart.py \\
        --min-speedup 3 --out /tmp/b.json

Exits non-zero when the warm speedup falls below ``--min-speedup``
(default 5x), when any report differs, or when any round trip diverges.
CI restores the store directory with ``actions/cache``, so even the
"cold" CI run usually warm-starts from a previous build's surfaces.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

#: Executed in a fresh interpreter per leg: argv = (store, reports, stats).
_CHILD = """\
import json, sys, time
from repro import cli
from repro.platform.sweepcache import shared_cache

t0 = time.perf_counter()
rc = cli.main(["reproduce", "--output", sys.argv[2],
               "--cache-dir", sys.argv[1]])
elapsed = time.perf_counter() - t0
assert rc == 0, f"reproduce failed with exit code {rc}"

stats = shared_cache().stats()
store = shared_cache().store
store_stats = store.stats() if store is not None else None
with open(sys.argv[3], "w") as fh:
    json.dump({
        "elapsed_s": elapsed,
        "memory": {"hits": stats.memory.hits,
                   "misses": stats.memory.misses},
        "store": {"hits": store_stats.hits,
                  "misses": store_stats.misses,
                  "invalid_records": store_stats.invalid_records,
                  "bytes_read": store_stats.bytes_read,
                  "bytes_written": store_stats.bytes_written}
                 if store_stats else None,
    }, fh)
"""


def _run_leg(store_dir: Path, reports_dir: Path, stats_path: Path) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    subprocess.run(
        [sys.executable, "-c", _CHILD,
         str(store_dir), str(reports_dir), str(stats_path)],
        cwd=REPO_ROOT, env=env, check=True,
        stdout=subprocess.DEVNULL,
    )
    with open(stats_path) as fh:
        return json.load(fh)


def _compare_reports(cold_dir: Path, warm_dir: Path) -> list:
    """Names of report files that differ (empty = byte-identical runs)."""
    cold = sorted(p.name for p in cold_dir.iterdir())
    warm = sorted(p.name for p in warm_dir.iterdir())
    if cold != warm:
        return sorted(set(cold) ^ set(warm))
    return [name for name in cold
            if (cold_dir / name).read_bytes() != (warm_dir / name).read_bytes()]


def _round_trip_divergence(store_dir: Path) -> dict:
    """Max relative store round-trip divergence over all 25 kernels."""
    import numpy as np

    from repro.platform.hd7970 import make_hd7970_platform
    from repro.platform.store import SweepStore
    from repro.workloads.registry import all_kernels

    platform = make_hd7970_platform()
    store = SweepStore(store_dir)
    worst = 0.0
    kernels = all_kernels()
    for kernel in kernels:
        spec = kernel.base
        fresh = platform.grid_sweep(spec)
        key = platform.sweep_cache_key(spec)
        assert store.save_batch(key, fresh)
        loaded = store.load_batch(key)
        assert loaded is not None, f"round trip lost {spec.name}"
        for name in ("time", "energy", "card_power", "achieved_bandwidth",
                     "gpu_power", "memory_power"):
            a, b = getattr(fresh, name), getattr(loaded, name)
            with np.errstate(divide="ignore", invalid="ignore"):
                rel = np.abs(b - a) / np.where(a != 0, np.abs(a), 1.0)
            worst = max(worst, float(np.max(rel)))
        if fresh.configs != loaded.configs \
                or fresh.bandwidth_limit != loaded.bandwidth_limit:
            worst = float("inf")
    return {"kernels": len(kernels), "max_rel_divergence": worst}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--min-speedup", type=float, default=5.0,
                        help="fail if warm reproduce is not at least this "
                             "much faster than cold (default: 5x)")
    parser.add_argument("--warm-repeats", type=int, default=3,
                        help="warm-leg repeats, best-of (the warm run is "
                             "repeatable; the cold run, which populates "
                             "the store, is not)")
    parser.add_argument("--store-dir", default=None, metavar="DIR",
                        help="store directory to benchmark against "
                             "(default: a fresh temporary directory; pass "
                             "a persistent path to measure CI cache reuse)")
    parser.add_argument("--out", default="BENCH_warmstart.json",
                        help="output JSON path (default: "
                             "BENCH_warmstart.json)")
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="warmstart-") as scratch:
        scratch = Path(scratch)
        store_dir = (Path(args.store_dir).expanduser()
                     if args.store_dir else scratch / "store")
        cold_reports = scratch / "reports-cold"
        warm_reports = scratch / "reports-warm"

        print("cold reproduce (empty store) ...")
        cold = _run_leg(store_dir, cold_reports, scratch / "cold.json")
        print(f"  {cold['elapsed_s']:.2f}s, "
              f"store {cold['store']['hits']} hits / "
              f"{cold['store']['misses']} misses, "
              f"{cold['store']['bytes_written'] / 1024:.0f} KiB written")

        print(f"warm reproduce (fresh interpreter, populated store, "
              f"best of {args.warm_repeats}) ...")
        warm = min(
            (_run_leg(store_dir, warm_reports, scratch / "warm.json")
             for _ in range(max(1, args.warm_repeats))),
            key=lambda leg: leg["elapsed_s"],
        )
        store = warm["store"]
        lookups = store["hits"] + store["misses"]
        hit_rate = store["hits"] / lookups if lookups else 0.0
        print(f"  {warm['elapsed_s']:.2f}s, "
              f"store {store['hits']} hits / {store['misses']} misses "
              f"({hit_rate:.0%}), "
              f"{store['bytes_read'] / 1024:.0f} KiB read")

        differing = _compare_reports(cold_reports, warm_reports)
        round_trip = _round_trip_divergence(scratch / "roundtrip-store")

    speedup = cold["elapsed_s"] / warm["elapsed_s"]
    # A CI-restored store makes the "cold" leg warm-start too (its store
    # hits are nonzero); cold ~= warm then, so the speedup floor is
    # meaningless and only the bitwise checks are enforced.
    prepopulated = cold["store"]["hits"] > 0
    summary = {
        "cold_s": cold["elapsed_s"],
        "warm_s": warm["elapsed_s"],
        "warm_speedup": speedup,
        "min_speedup_floor": args.min_speedup,
        "cold_store_prepopulated": prepopulated,
        "cold_store": cold["store"],
        "warm_store": store,
        "warm_store_hit_rate": hit_rate,
        "reports_identical": not differing,
        "differing_reports": differing,
        "round_trip": round_trip,
        "max_rel_divergence": round_trip["max_rel_divergence"],
    }
    with open(args.out, "w") as fh:
        json.dump(summary, fh, indent=2)
        fh.write("\n")
    print(f"\nwarm speedup {speedup:.1f}x "
          f"(cold {cold['elapsed_s']:.2f}s -> warm {warm['elapsed_s']:.2f}s), "
          f"store hit rate {hit_rate:.0%}, "
          f"round-trip divergence {round_trip['max_rel_divergence']:.1e} "
          f"over {round_trip['kernels']} kernels -> {args.out}")

    failed = False
    if differing:
        print(f"FAIL: {len(differing)} report(s) differ between cold and "
              f"warm runs: {', '.join(differing)}", file=sys.stderr)
        failed = True
    if round_trip["max_rel_divergence"] != 0.0:
        print("FAIL: store round trip is not bitwise identical "
              f"({round_trip['max_rel_divergence']:.3e})", file=sys.stderr)
        failed = True
    if speedup < args.min_speedup:
        if prepopulated:
            print(f"note: speedup floor waived - the store was already "
                  f"populated ({cold['store']['hits']} cold-leg hits), so "
                  f"both legs warm-started")
        else:
            print(f"FAIL: warm speedup {speedup:.1f}x below the "
                  f"{args.min_speedup}x floor", file=sys.stderr)
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
