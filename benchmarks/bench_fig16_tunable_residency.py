"""Figure 16: residency of all three hardware tunables in Graph500."""

from repro.experiments import fig14_16_graph500 as experiment


def test_fig16_tunable_residency(benchmark, ctx, emit):
    result = benchmark.pedantic(
        experiment.run, args=(ctx,), rounds=1, iterations=1
    )
    emit("fig16_tunable_residency", experiment.format_report(result))
    # Paper: compute frequency pinned at the 1 GHz boost state (high
    # divergence keeps compute sensitivity high); 32 CUs dominate.
    assert result.dominant_f_cu() == 1e9
    assert result.f_cu_residency.fraction_at(1e9) > 0.7
    assert result.cu_residency.dominant_value() == 32
