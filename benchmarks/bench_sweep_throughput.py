#!/usr/bin/env python
"""Sweep-engine throughput benchmark: scalar vs batch vs batch+cache.

Measures how fast the platform evaluates a kernel across its configuration
grid along the three paths this repro offers:

* **scalar** — one ``run_kernel`` call per configuration (the original
  per-launch path),
* **batch**  — one vectorized ``run_kernel_batch`` call for the whole grid,
* **batch+cache** — ``grid_sweep`` hitting the shared sweep cache (the
  steady-state cost every consumer after the first pays).

The benchmark also *verifies* the batch path against the scalar path at a
1e-9 relative tolerance on time, energy and card power (they are bitwise
identical by construction; the tolerance is the acceptance contract), and
fails with a nonzero exit if equivalence or the speedup floor is violated.

Results are written as machine-readable JSON (``BENCH_sweep.json``)::

    python benchmarks/bench_sweep_throughput.py                 # full grid
    python benchmarks/bench_sweep_throughput.py --stride 8 \\
        --kernels MaxFlops.MaxFlops --min-speedup 5 --out /tmp/b.json

CI runs the reduced-grid form as a smoke test; the committed
``BENCH_sweep.json`` is a full-grid run.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List

from repro.platform.hd7970 import make_hd7970_platform
from repro.platform.sweepcache import SweepCache
from repro.workloads.registry import all_kernels

DEFAULT_KERNELS = (
    "MaxFlops.MaxFlops",
    "DeviceMemory.DeviceMemory",
    "Sort.BottomScan",
    "CoMD.AdvanceVelocity",
    "BPT.FindRange",
)


def _rel_err(a: float, b: float) -> float:
    return abs(a - b) / abs(a) if a != 0 else abs(b)


def bench_kernel(platform, spec, configs, repeats: int) -> Dict:
    """Time the three paths for one kernel; verify batch == scalar."""
    n = len(configs)

    # Scalar path: one model round trip per configuration.
    t0 = time.perf_counter()
    scalar_results = [platform.run_kernel(spec, c) for c in configs]
    t_scalar = time.perf_counter() - t0

    # Batch path: one vectorized evaluation (best of `repeats`).
    t_batch = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        batch = platform.run_kernel_batch(spec, configs)
        t_batch = min(t_batch, time.perf_counter() - t0)

    # Batch + cache: steady-state lookup from a warm sweep cache. The
    # cache stores full-grid sweeps, so this leg always times the full
    # grid (grid_sweep has no strided form) — configs/sec still uses n
    # of the *cached* grid.
    cache = SweepCache()
    platform.grid_sweep(spec, cache=cache)  # warm
    t_cached = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        platform.grid_sweep(spec, cache=cache)
        t_cached = min(t_cached, time.perf_counter() - t0)
    n_cached = len(platform.config_space)

    # Equivalence check: batch vs scalar, element by element.
    worst = 0.0
    for i, scalar in enumerate(scalar_results):
        worst = max(
            worst,
            _rel_err(scalar.time, float(batch.time[i])),
            _rel_err(scalar.energy, float(batch.energy[i])),
            _rel_err(scalar.power.card, float(batch.card_power[i])),
        )
        if scalar.bandwidth_limit != batch.bandwidth_limit[i]:
            worst = float("inf")

    return {
        "kernel": spec.name,
        "configs": n,
        "scalar_s": t_scalar,
        "batch_s": t_batch,
        "cached_s": t_cached,
        "scalar_configs_per_s": n / t_scalar,
        "batch_configs_per_s": n / t_batch,
        "cached_configs_per_s": n_cached / t_cached,
        "batch_speedup": t_scalar / t_batch,
        "cached_speedup": (t_scalar / n) / (t_cached / n_cached),
        "max_rel_divergence": worst,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--kernels", nargs="*", default=list(DEFAULT_KERNELS),
                        help="qualified kernel names (default: 5 "
                             "representative kernels)")
    parser.add_argument("--stride", type=int, default=1, metavar="N",
                        help="evaluate every Nth grid configuration "
                             "(reduced grid for CI smoke; default: full)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats for the fast paths (best-of)")
    parser.add_argument("--min-speedup", type=float, default=10.0,
                        help="fail if the geomean batch speedup over the "
                             "scalar path falls below this floor")
    parser.add_argument("--tolerance", type=float, default=1e-9,
                        help="max allowed batch-vs-scalar relative "
                             "divergence on time/energy/power")
    parser.add_argument("--out", default="BENCH_sweep.json",
                        help="output JSON path (default: BENCH_sweep.json)")
    args = parser.parse_args(argv)

    if args.stride < 1:
        parser.error("--stride must be >= 1")
    platform = make_hd7970_platform()
    configs = tuple(platform.config_space)[:: args.stride]

    by_name = {k.base.name: k.base for k in all_kernels()}
    try:
        specs = [by_name[name] for name in args.kernels]
    except KeyError as err:
        parser.error(f"unknown kernel {err.args[0]!r}; "
                     f"known: {', '.join(sorted(by_name))}")

    rows: List[Dict] = []
    for spec in specs:
        row = bench_kernel(platform, spec, configs, args.repeats)
        rows.append(row)
        print(f"{row['kernel']:28s} {row['configs']:4d} configs  "
              f"scalar {row['scalar_configs_per_s']:9.0f}/s  "
              f"batch {row['batch_configs_per_s']:11.0f}/s "
              f"({row['batch_speedup']:6.1f}x)  "
              f"cached {row['cached_configs_per_s']:13.0f}/s  "
              f"div {row['max_rel_divergence']:.2e}")

    def geomean(values):
        product = 1.0
        for v in values:
            product *= v
        return product ** (1.0 / len(values))

    summary = {
        "grid_points": len(configs),
        "stride": args.stride,
        "geomean_batch_speedup": geomean([r["batch_speedup"] for r in rows]),
        "geomean_cached_speedup": geomean([r["cached_speedup"] for r in rows]),
        "max_rel_divergence": max(r["max_rel_divergence"] for r in rows),
        "min_speedup_floor": args.min_speedup,
        "tolerance": args.tolerance,
        "kernels": rows,
    }
    with open(args.out, "w") as fh:
        json.dump(summary, fh, indent=2)
        fh.write("\n")
    print(f"\ngeomean batch speedup {summary['geomean_batch_speedup']:.1f}x, "
          f"cached {summary['geomean_cached_speedup']:.1f}x, "
          f"max divergence {summary['max_rel_divergence']:.2e} "
          f"-> {args.out}")

    if summary["max_rel_divergence"] > args.tolerance:
        print(f"FAIL: batch diverges from scalar beyond {args.tolerance}",
              file=sys.stderr)
        return 1
    if summary["geomean_batch_speedup"] < args.min_speedup:
        print(f"FAIL: geomean batch speedup "
              f"{summary['geomean_batch_speedup']:.1f}x below the "
              f"{args.min_speedup}x floor", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
