#!/usr/bin/env python
"""Batched event-sim benchmark: lockstep lane engine vs the scalar loop.

Three (kernel x config) grids are timed through both engines, spanning
the two shapes the batched engine serves:

* **validation-node** — the 25-kernel registry over the validation
  experiment's 3x3x3 corner/midpoint config sample (675 lanes): the
  exact grid ``ext_model_validation`` simulates on a cold ``reproduce``.
* **fleet-quarter / fleet-grid** — the registry over every 4th config
  and over the *full* 448-point hd7970 config space (2 800 / 11 200
  lanes): the fleet-characterization shape ``run_batch`` exists for
  (ROADMAP item 3 — validating thousands of synthesized kernels).

The headline metric, ``geomean_fleet_speedup``, is the geometric mean
over the two fleet-class grids and is floored at 10x: with thousands of
lanes the per-iteration numpy dispatch cost is fully amortized and the
engine runs at its streaming throughput. The node grid is reported and
floored separately (``--min-node-speedup``, default 5x) because at 675
lanes dispatch overhead is a constant ~half of every lockstep iteration
— its real budget is the cold-``reproduce`` wall-clock gate in
``BENCH_pipeline.json``, not a ratio.

Every scenario is also a **bitwise gate**, not a tolerance: all four
:class:`~repro.perf.eventsim.EventSimResult` fields of every batched
lane must equal the scalar engine's exactly, or the benchmark fails.
Timings are best-of on both sides so one scheduler hiccup cannot
manufacture (or hide) a regression. Results land in machine-readable
JSON (``BENCH_eventsim.json``)::

    PYTHONPATH=src python benchmarks/bench_eventsim.py   # full run
    PYTHONPATH=src python benchmarks/bench_eventsim.py \\
        --fleet-stride 16 --grid-stride 8 \\
        --min-speedup 6 --min-node-speedup 3 \\
        --out /tmp/b.json                                # CI smoke form

CI runs the reduced form as a smoke test; the committed
``BENCH_eventsim.json`` is a full run.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from typing import Dict, List

from repro.experiments.ext_model_validation import _sample_configs
from repro.gpu.config import ConfigSpace
from repro.memory.controller import MemoryControllerModel
from repro.perf.eventsim import EventDrivenModel
from repro.perf.eventsim_batch import BatchedEventModel
from repro.platform.calibration import default_calibration
from repro.workloads.registry import all_kernels


def _geomean(values: List[float]) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values))


def _rows_identical(batched_rows, scalar_rows) -> bool:
    """All four EventSimResult fields, exact equality, every lane."""
    return all(
        b.time == s.time
        and b.simulated_waves == s.simulated_waves
        and b.total_waves == s.total_waves
        and b.simd_busy_fraction == s.simd_busy_fraction
        for b_row, s_row in zip(batched_rows, scalar_rows)
        for b, s in zip(b_row, s_row)
    )


def bench_scenario(name: str, scalar, batched, specs, configs,
                   repeats: int, scalar_repeats: int) -> Dict:
    """Time one (kernel x config) grid through both engines, best-of."""
    t_batched = float("inf")
    batched_rows = None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        batched_rows = batched.run_batch(specs, configs)
        t_batched = min(t_batched, time.perf_counter() - t0)

    t_scalar = float("inf")
    scalar_rows = None
    for _ in range(max(1, scalar_repeats)):
        t0 = time.perf_counter()
        scalar_rows = [[scalar.run(spec, config) for config in configs]
                       for spec in specs]
        t_scalar = min(t_scalar, time.perf_counter() - t0)

    return {
        "scenario": name,
        "kernels": len(specs),
        "configs": len(configs),
        "lanes": len(specs) * len(configs),
        "scalar_s": t_scalar,
        "batched_s": t_batched,
        "speedup": t_scalar / t_batched,
        "identical": _rows_identical(batched_rows, scalar_rows),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=3,
                        help="batched timing repeats, best-of (default: 3)")
    parser.add_argument("--scalar-repeats", type=int, default=2,
                        help="scalar timing repeats, best-of (default: 2; "
                             "the scalar side is interpreter-bound and "
                             "much less noisy than the streaming side)")
    parser.add_argument("--fleet-stride", type=int, default=4,
                        help="config-space stride of the fleet-quarter "
                             "scenario (default: 4 -> 2800 lanes)")
    parser.add_argument("--grid-stride", type=int, default=1,
                        help="config-space stride of the fleet-grid "
                             "scenario (default: 1 = the full 448-config "
                             "space -> 11200 lanes)")
    parser.add_argument("--min-speedup", type=float, default=10.0,
                        help="fail if the fleet-class geomean speedup "
                             "falls below this floor (default: 10x)")
    parser.add_argument("--min-node-speedup", type=float, default=5.0,
                        help="fail if the validation-node speedup falls "
                             "below this floor (default: 5x)")
    parser.add_argument("--out", default="BENCH_eventsim.json",
                        help="output JSON path "
                             "(default: BENCH_eventsim.json)")
    args = parser.parse_args(argv)

    calibration = default_calibration()
    controller = MemoryControllerModel(arch=calibration.arch,
                                       timing=calibration.gddr5_timing)
    clocks = calibration.clock_domain_model()
    scalar = EventDrivenModel(calibration.arch, controller, clocks)
    batched = BatchedEventModel(calibration.arch, controller, clocks)

    space = list(ConfigSpace(calibration.arch))
    specs = [kernel.base for kernel in all_kernels()]
    scenarios = [
        ("validation-node", _sample_configs(ConfigSpace(calibration.arch))),
        ("fleet-quarter", space[::max(1, args.fleet_stride)]),
        ("fleet-grid", space[::max(1, args.grid_stride)]),
    ]

    results = []
    for name, configs in scenarios:
        row = bench_scenario(name, scalar, batched, specs, configs,
                             args.repeats, args.scalar_repeats)
        results.append(row)
        print(f"{row['scenario']:16s} {row['lanes']:6d} lanes  "
              f"scalar {row['scalar_s']:7.3f}s  "
              f"batched {row['batched_s']:7.3f}s  "
              f"({row['speedup']:5.2f}x)  "
              f"identical {row['identical']}")

    node = results[0]
    fleet = results[1:]
    geomean = _geomean([row["speedup"] for row in fleet])
    identical = all(row["identical"] for row in results)
    summary = {
        "geomean_fleet_speedup": geomean,
        "node_speedup": node["speedup"],
        "node_scalar_s": node["scalar_s"],
        "node_batched_s": node["batched_s"],
        "identical": identical,
        "min_speedup_floor": args.min_speedup,
        "min_node_speedup_floor": args.min_node_speedup,
        "scenarios": results,
    }
    with open(args.out, "w") as fh:
        json.dump(summary, fh, indent=2)
        fh.write("\n")
    print(f"\ngeomean fleet speedup {geomean:.2f}x, node speedup "
          f"{node['speedup']:.2f}x -> {args.out}")

    if not identical:
        bad = ", ".join(r["scenario"] for r in results if not r["identical"])
        print(f"FAIL: batched lanes are not bitwise identical to the "
              f"scalar loop in: {bad}", file=sys.stderr)
        return 1
    failed = False
    if geomean < args.min_speedup:
        print(f"FAIL: fleet-class geomean speedup {geomean:.2f}x below "
              f"the {args.min_speedup}x floor", file=sys.stderr)
        failed = True
    if node["speedup"] < args.min_node_speedup:
        print(f"FAIL: validation-node speedup {node['speedup']:.2f}x "
              f"below the {args.min_node_speedup}x floor", file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
