"""Figure 10: overall ED² gain from Harmonia."""

from repro.experiments import fig10_13_evaluation as experiment


def test_fig10_ed2(benchmark, ctx, emit):
    result = benchmark.pedantic(
        experiment.run, args=(ctx,), rounds=1, iterations=1
    )
    emit("fig10_ed2", experiment.format_fig10(result))
    summary = result.summary
    # Paper: 12% average, 36% max (BPT), within ~3% of the oracle.
    assert 0.08 < summary.geomean_ed2("harmonia") < 0.18
    assert 0.28 < summary.comparison("BPT", "harmonia").ed2_improvement < 0.48
    assert summary.geomean_ed2("oracle") >= summary.geomean_ed2("harmonia")
