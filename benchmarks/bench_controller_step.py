#!/usr/bin/env python
"""Batched controller engine benchmark: lockstep sessions vs the scalar loop.

Two controller-bound noisy workloads are measured, both with warmed sweep
surfaces so the timings isolate per-launch work (controller stepping plus
the per-launch noisy measurement path) rather than one-time sweeps:

* **Variant-sweep lanes** — the engine's native lane model (app x seed x
  policy-variant): every application in the set is stepped with five
  Harmonia variants on each of N noisy platforms, one scalar
  ``ApplicationRunner`` run per lane vs one batched call with
  ``5 x N`` lanes.
* **Noisy seed sessions** — the Monte Carlo reference-run shape: one
  application stepped on many independent noisy platforms, one scalar
  run per seed vs a single batched call with one lane per seed.

Clean (noise-free) evaluation is deliberately *not* a timed scenario: on
a deterministic platform the scalar launch path is already served from
the same memoized grid surface the batched engine reads, so there is no
controller-bound gap to measure (see docs/performance.md).

Every comparison is a **bitwise gate**, not a tolerance: each batched
lane's launch records and metrics must equal its scalar twin exactly, or
the benchmark fails. Timed regions never construct policies — fresh
policy instances are built outside the clock for every repeat, because
policies accumulate phase memory and a reused instance would not re-run
the same control path.

The headline metric, ``geomean_controller_speedup``, is the geometric
mean of the per-application variant-sweep speedups and the seed-session
speedup; the ledger floors it. Results are written as machine-readable
JSON (``BENCH_controller.json``)::

    python benchmarks/bench_controller_step.py            # full set
    python benchmarks/bench_controller_step.py --apps SPMV miniFE \\
        --variant-seeds 4 --session-seeds 8 --min-speedup 3 \\
        --out /tmp/b.json                                 # CI smoke form

CI runs the reduced form as a smoke test; the committed
``BENCH_controller.json`` is a full run.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from typing import Dict, List

from repro.core.harmonia import HarmoniaPolicy
from repro.experiments.context import default_context
from repro.platform.hd7970 import make_hd7970_platform
from repro.runtime.session import BatchSessionRunner, SessionSpec
from repro.runtime.simulator import ApplicationRunner
from repro.sensitivity.binning import SensitivityBins

#: Noise fraction of both scenarios (paper-plausible 5%).
NOISE = 0.05

#: Default variant-sweep application set: a phase-heavy BFS (Graph500),
#: iterative solvers (miniFE, CFD-like SPMV), a long run (CoMD) and two
#: memory-bound sorters/tree walkers with distinct controller behaviour.
DEFAULT_APPS = ("SPMV", "miniFE", "Graph500", "CoMD", "Sort", "BPT")

#: Harmonia policy-variant grid: perturbations of the controller's
#: binning edges, phase-average gain and FG pacing. All variants share
#: the trained predictors (and the batched group signature), which is
#: exactly the controller-sweep shape the lane model targets.
VARIANTS = (
    dict(),
    dict(monitor_alpha=0.6, fg_patience=1, max_dithering=4),
    dict(bins=SensitivityBins(low_edge=0.25, high_edge=0.65)),
    dict(monitor_alpha=0.3, max_dithering=12),
    dict(bins=SensitivityBins(low_edge=0.35, high_edge=0.75), fg_patience=2),
)


def _make_variant(context, variant: Dict) -> HarmoniaPolicy:
    training = context.training
    return HarmoniaPolicy(
        context.platform.config_space, training.compute, training.bandwidth,
        **variant,
    )


def _runs_identical(scalar, batched) -> bool:
    if scalar.metrics != batched.metrics:
        return False
    if len(scalar.trace.records) != len(batched.trace.records):
        return False
    return all(
        a.iteration == b.iteration and a.kernel_name == b.kernel_name
        and a.result == b.result
        for a, b in zip(scalar.trace.records, batched.trace.records)
    )


def _geomean(values: List[float]) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values))


def bench_variant_sweep(context, application, platforms,
                        repeats: int) -> Dict:
    """One app x seed x policy-variant sweep: scalar loop vs one call."""
    lane_platforms = [p for p in platforms for _ in VARIANTS]

    def fresh_policies() -> List[HarmoniaPolicy]:
        return [_make_variant(context, v) for _ in platforms for v in VARIANTS]

    engine = BatchSessionRunner(context.platform)
    # Warm the clean surfaces and the engine's per-surface numerics.
    engine.run_sessions([
        SessionSpec(application=application, policy=policy, platform=platform)
        for policy, platform in zip(fresh_policies(), lane_platforms)
    ])

    t_scalar = t_batched = float("inf")
    scalar_runs = outcomes = None
    for _ in range(repeats):
        policies = fresh_policies()
        t0 = time.perf_counter()
        scalar_runs = [
            ApplicationRunner(platform).run(application, policy)
            for policy, platform in zip(policies, lane_platforms)
        ]
        t_scalar = min(t_scalar, time.perf_counter() - t0)

        sessions = [
            SessionSpec(application=application, policy=policy,
                        platform=platform)
            for policy, platform in zip(fresh_policies(), lane_platforms)
        ]
        t0 = time.perf_counter()
        outcomes = engine.run_sessions(sessions)
        t_batched = min(t_batched, time.perf_counter() - t0)

    identical = all(
        _runs_identical(scalar, batched)
        for scalar, batched in zip(scalar_runs, outcomes)
    )
    launches = sum(1 for _ in application.launches())
    return {
        "application": application.name,
        "seeds": len(platforms),
        "variants": len(VARIANTS),
        "lanes": len(lane_platforms),
        "launches_per_lane": launches,
        "scalar_s": t_scalar,
        "batched_s": t_batched,
        "speedup": t_scalar / t_batched,
        "identical": identical,
    }


def bench_seed_sessions(context, application, seeds: int,
                        repeats: int) -> Dict:
    """Noisy seed fan-out: one scalar run per seed vs one batched call."""
    platforms = [make_hd7970_platform(noise_std_fraction=NOISE, seed=s)
                 for s in range(seeds)]

    def fresh_policies() -> List[HarmoniaPolicy]:
        return [context.harmonia_policy() for _ in platforms]

    engine = BatchSessionRunner(context.platform)
    engine.run_sessions([
        SessionSpec(application=application, policy=policy, platform=platform)
        for policy, platform in zip(fresh_policies(), platforms)
    ])

    t_scalar = t_batched = float("inf")
    scalar_runs = outcomes = None
    for _ in range(repeats):
        policies = fresh_policies()
        t0 = time.perf_counter()
        scalar_runs = [
            ApplicationRunner(platform).run(application, policy)
            for policy, platform in zip(policies, platforms)
        ]
        t_scalar = min(t_scalar, time.perf_counter() - t0)

        sessions = [
            SessionSpec(application=application, policy=policy,
                        platform=platform)
            for policy, platform in zip(fresh_policies(), platforms)
        ]
        t0 = time.perf_counter()
        outcomes = engine.run_sessions(sessions)
        t_batched = min(t_batched, time.perf_counter() - t0)

    identical = all(
        _runs_identical(scalar, batched)
        for scalar, batched in zip(scalar_runs, outcomes)
    )
    launches = sum(1 for _ in application.launches())
    return {
        "application": application.name,
        "seeds": seeds,
        "noise": NOISE,
        "launches_per_lane": launches,
        "scalar_s": t_scalar,
        "batched_s": t_batched,
        "sessions_speedup": t_scalar / t_batched,
        "identical": identical,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--apps", nargs="*", default=list(DEFAULT_APPS),
                        help="applications of the variant-sweep scenario "
                             f"(default: {' '.join(DEFAULT_APPS)})")
    parser.add_argument("--session-app", default="Graph500",
                        help="application of the noisy seed-session "
                             "scenario (default: Graph500)")
    parser.add_argument("--variant-seeds", type=int, default=10,
                        help="noisy platforms per variant-sweep app; lanes "
                             "= 5 variants x this (default: 10)")
    parser.add_argument("--session-seeds", type=int, default=25,
                        help="noisy seed-session lanes (default: 25)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats, best-of, fresh policies per "
                             "repeat (default: 3)")
    parser.add_argument("--min-speedup", type=float, default=5.0,
                        help="fail if the geomean controller speedup falls "
                             "below this floor")
    parser.add_argument("--out", default="BENCH_controller.json",
                        help="output JSON path "
                             "(default: BENCH_controller.json)")
    args = parser.parse_args(argv)

    context = default_context()
    by_name = {app.name: app for app in context.applications}
    unknown = [name for name in args.apps + [args.session_app]
               if name not in by_name]
    if unknown:
        parser.error(f"unknown application(s) {', '.join(unknown)}; "
                     f"known: {', '.join(sorted(by_name))}")

    platforms = [make_hd7970_platform(noise_std_fraction=NOISE, seed=s)
                 for s in range(args.variant_seeds)]
    sweeps = []
    for name in args.apps:
        sweep = bench_variant_sweep(context, by_name[name], platforms,
                                    args.repeats)
        sweeps.append(sweep)
        print(f"variant sweep {sweep['application']:14s} "
              f"{sweep['lanes']:4d} lanes  "
              f"scalar {sweep['scalar_s']:7.3f}s  "
              f"batched {sweep['batched_s']:7.3f}s  "
              f"({sweep['speedup']:5.2f}x)  "
              f"identical {sweep['identical']}")

    sessions = bench_seed_sessions(context, by_name[args.session_app],
                                   args.session_seeds, args.repeats)
    print(f"seed sessions {sessions['application']:14s} "
          f"{sessions['seeds']:4d} lanes  "
          f"scalar {sessions['scalar_s']:7.3f}s  "
          f"batched {sessions['batched_s']:7.3f}s  "
          f"({sessions['sessions_speedup']:5.2f}x)  "
          f"identical {sessions['identical']}")

    speedups = [s["speedup"] for s in sweeps] + [sessions["sessions_speedup"]]
    geomean = _geomean(speedups)
    identical = (all(s["identical"] for s in sweeps)
                 and sessions["identical"])
    summary = {
        "noise": NOISE,
        "geomean_controller_speedup": geomean,
        "variant_sweep_geomean": _geomean([s["speedup"] for s in sweeps]),
        "sessions_speedup": sessions["sessions_speedup"],
        "identical": identical,
        "min_speedup_floor": args.min_speedup,
        "variant_sweeps": sweeps,
        "seed_sessions": sessions,
    }
    with open(args.out, "w") as fh:
        json.dump(summary, fh, indent=2)
        fh.write("\n")
    print(f"\ngeomean controller speedup {geomean:.2f}x -> {args.out}")

    if not identical:
        print("FAIL: batched sessions are not bitwise identical to the "
              "scalar loop", file=sys.stderr)
        return 1
    if geomean < args.min_speedup:
        print(f"FAIL: geomean controller speedup {geomean:.2f}x below the "
              f"{args.min_speedup}x floor", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
