"""Figure 6: cost of optimizing energy vs ED² vs performance."""

from repro.experiments import fig06_metric_tradeoffs as experiment


def test_fig06_metric_tradeoffs(benchmark, ctx, emit):
    results = benchmark.pedantic(
        experiment.run, args=(ctx,), rounds=1, iterations=1
    )
    emit("fig06_metric_tradeoffs", experiment.format_report(results))
    for result in results.values():
        # Paper shape: energy optimality costs significant performance;
        # ED² optimality is nearly free (~1%).
        assert result.energy_opt_perf_loss > 0.10
        assert result.ed2_opt_perf_loss < 0.04
