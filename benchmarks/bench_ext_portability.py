"""Extension: the Section 4.3 portability claim on a second platform."""

from repro.experiments import ext_portability as experiment


def test_ext_portability(benchmark, ctx, emit):
    result = benchmark.pedantic(
        experiment.run, args=(ctx,), rounds=1, iterations=1
    )
    emit("ext_portability", experiment.format_report(result))
    # The unchanged pipeline must deliver comparable headline results on
    # the smaller platform: double-digit-ish ED² gain, tiny perf loss,
    # strong model fits.
    assert result.pitcairn_ed2 > 0.06
    assert result.pitcairn_perf > -0.02
    assert result.pitcairn_bw_correlation > 0.85
    assert result.pitcairn_compute_correlation > 0.75
    assert result.pitcairn_configs == 240
