"""Section 4.1's full characterization sweep (the training inputs)."""

from repro.experiments import characterization as experiment


def test_characterization(benchmark, ctx, emit):
    result = benchmark.pedantic(
        experiment.run, args=(ctx,), rounds=1, iterations=1
    )
    emit("characterization", experiment.format_report(result))
    assert len(result.rows) == 25
    # The stress benchmarks bracket the bandwidth-sensitivity range.
    assert result.most_bandwidth_sensitive().bandwidth_sensitivity > 0.9
    assert result.least_bandwidth_sensitive().bandwidth_sensitivity < 0.1
    # MaxFlops scales linearly with both compute tunables.
    maxflops = result.kernel("MaxFlops.MaxFlops")
    assert maxflops.curves["n_cu"].scaling_ratio() > 6.0
    assert maxflops.curves["f_mem"].scaling_ratio() < 1.05
