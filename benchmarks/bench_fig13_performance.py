"""Figure 13: performance under Harmonia and CG-only."""

from repro.experiments import fig10_13_evaluation as experiment


def test_fig13_performance(benchmark, ctx, emit):
    result = benchmark.pedantic(
        experiment.run, args=(ctx,), rounds=1, iterations=1
    )
    emit("fig13_performance", experiment.format_fig13(result))
    summary = result.summary
    # Paper: Harmonia -0.36% average, -3.6% worst (Streamcluster);
    # CG-only -2.2% average, -27% worst (Streamcluster); BPT +11%.
    assert -0.02 < summary.geomean_performance("harmonia", True) < 0.02
    assert -0.06 < summary.geomean_performance("cg-only", True) < 0.0
    sc_cg = summary.comparison("Streamcluster", "cg-only").performance_delta
    assert -0.40 < sc_cg < -0.15
    sc_hm = summary.comparison("Streamcluster", "harmonia").performance_delta
    assert sc_hm > -0.06
    assert summary.comparison("BPT", "harmonia").performance_delta > 0.03
