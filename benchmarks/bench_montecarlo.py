#!/usr/bin/env python
"""Monte Carlo / noisy-batch benchmark: keyed noise at batch speed.

Two contracts of the launch-keyed noise RNG are measured and enforced:

* **Noisy batch speedup** — evaluating a kernel's full grid on a *noisy*
  platform through ``run_kernel_batch`` must stay an order of magnitude
  faster than the scalar per-launch loop, at **zero** divergence: every
  batch element is bitwise identical to the corresponding scalar launch
  (same keyed draw, same multiply).
* **CI-band stability** — the vectorized Monte Carlo engine must produce
  bitwise-reproducible per-seed samples run to run (the draws are pure
  functions of ``(seed, spec, iteration, config)``), so confidence bands
  are stable artifacts, not run-dependent estimates.

Results are written as machine-readable JSON (``BENCH_montecarlo.json``)::

    python benchmarks/bench_montecarlo.py                 # full grid
    python benchmarks/bench_montecarlo.py --stride 4 \\
        --min-speedup 5 --out /tmp/b.json                 # CI smoke form

CI runs the reduced-grid form as a smoke test; the committed
``BENCH_montecarlo.json`` is a full-grid run.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List

import numpy as np

from repro.core.baseline import BaselinePolicy
from repro.platform.hd7970 import make_hd7970_platform
from repro.runtime.montecarlo import MonteCarloEngine
from repro.workloads.registry import all_kernels, get_application

DEFAULT_KERNELS = (
    "MaxFlops.MaxFlops",
    "DeviceMemory.DeviceMemory",
    "Sort.BottomScan",
    "CoMD.AdvanceVelocity",
    "BPT.FindRange",
)

#: Noise fraction used throughout (the paper-plausible 5% run-to-run).
NOISE = 0.05


def bench_noisy_kernel(spec, configs, repeats: int) -> Dict:
    """Noisy scalar loop vs noisy batch for one kernel, same platform."""
    platform = make_hd7970_platform(noise_std_fraction=NOISE, seed=7)
    n = len(configs)

    t0 = time.perf_counter()
    scalar_results = [platform.run_kernel(spec, c) for c in configs]
    t_scalar = time.perf_counter() - t0

    t_batch = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        batch = platform.run_kernel_batch(spec, configs)
        t_batch = min(t_batch, time.perf_counter() - t0)

    # Equivalence: bitwise, not merely within tolerance — scalar indexes
    # the very draw vector the batch applies.
    worst = 0.0
    for i, scalar in enumerate(scalar_results):
        if scalar.time != float(batch.time[i]) or \
                scalar.energy != float(batch.energy[i]):
            worst = max(
                worst,
                abs(scalar.time - float(batch.time[i])) / scalar.time,
                abs(scalar.energy - float(batch.energy[i])) / scalar.energy,
            )

    return {
        "kernel": spec.name,
        "configs": n,
        "scalar_s": t_scalar,
        "batch_s": t_batch,
        "scalar_configs_per_s": n / t_scalar,
        "batch_configs_per_s": n / t_batch,
        "batch_speedup": t_scalar / t_batch,
        "max_rel_divergence": worst,
    }


def bench_montecarlo(seeds: int, repeats: int) -> Dict:
    """Band stability + throughput of the vectorized MC engine."""
    app = get_application("MaxFlops")

    def rollout():
        platform = make_hd7970_platform()
        engine = MonteCarloEngine(platform, NOISE, seeds)
        policy = BaselinePolicy(platform.config_space)
        t0 = time.perf_counter()
        run = engine.rollout(app, policy)
        return run, time.perf_counter() - t0

    first, t_first = rollout()
    t_best = t_first
    stable = True
    for _ in range(repeats):
        again, elapsed = rollout()
        t_best = min(t_best, elapsed)
        stable = stable and \
            np.array_equal(first.time_samples, again.time_samples) and \
            np.array_equal(first.energy_samples, again.energy_samples)

    ed2 = first.ed2
    return {
        "application": app.name,
        "seeds": seeds,
        "noise": NOISE,
        "rollout_s": t_best,
        "trials_per_s": seeds / t_best,
        "bands_stable": stable,
        "ed2_mean": ed2.mean,
        "ed2_std": ed2.std,
        "ed2_ci_half_width": ed2.half_width,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--kernels", nargs="*", default=list(DEFAULT_KERNELS),
                        help="qualified kernel names (default: 5 "
                             "representative kernels)")
    parser.add_argument("--stride", type=int, default=1, metavar="N",
                        help="evaluate every Nth grid configuration "
                             "(reduced grid for CI smoke; default: full)")
    parser.add_argument("--seeds", type=int, default=16,
                        help="Monte Carlo trial seeds (default: 16)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats for the fast paths (best-of)")
    parser.add_argument("--min-speedup", type=float, default=10.0,
                        help="fail if the geomean noisy-batch speedup over "
                             "the noisy scalar loop falls below this floor")
    parser.add_argument("--out", default="BENCH_montecarlo.json",
                        help="output JSON path "
                             "(default: BENCH_montecarlo.json)")
    args = parser.parse_args(argv)

    if args.stride < 1:
        parser.error("--stride must be >= 1")
    configs = tuple(make_hd7970_platform().config_space)[:: args.stride]

    by_name = {k.base.name: k.base for k in all_kernels()}
    try:
        specs = [by_name[name] for name in args.kernels]
    except KeyError as err:
        parser.error(f"unknown kernel {err.args[0]!r}; "
                     f"known: {', '.join(sorted(by_name))}")

    rows: List[Dict] = []
    for spec in specs:
        row = bench_noisy_kernel(spec, configs, args.repeats)
        rows.append(row)
        print(f"{row['kernel']:28s} {row['configs']:4d} configs  "
              f"noisy scalar {row['scalar_configs_per_s']:9.0f}/s  "
              f"noisy batch {row['batch_configs_per_s']:11.0f}/s "
              f"({row['batch_speedup']:6.1f}x)  "
              f"div {row['max_rel_divergence']:.2e}")

    montecarlo = bench_montecarlo(args.seeds, args.repeats)
    print(f"{montecarlo['application']:28s} {montecarlo['seeds']:4d} trials  "
          f"{montecarlo['trials_per_s']:9.0f} trials/s  "
          f"ED2 {montecarlo['ed2_mean']:.4f} "
          f"±{montecarlo['ed2_ci_half_width']:.4f}  "
          f"stable {montecarlo['bands_stable']}")

    def geomean(values):
        product = 1.0
        for v in values:
            product *= v
        return product ** (1.0 / len(values))

    summary = {
        "grid_points": len(configs),
        "stride": args.stride,
        "noise": NOISE,
        "geomean_noisy_batch_speedup": geomean(
            [r["batch_speedup"] for r in rows]),
        "max_rel_divergence": max(r["max_rel_divergence"] for r in rows),
        "min_speedup_floor": args.min_speedup,
        "montecarlo": montecarlo,
        "kernels": rows,
    }
    with open(args.out, "w") as fh:
        json.dump(summary, fh, indent=2)
        fh.write("\n")
    print(f"\ngeomean noisy batch speedup "
          f"{summary['geomean_noisy_batch_speedup']:.1f}x, "
          f"max divergence {summary['max_rel_divergence']:.2e} "
          f"-> {args.out}")

    if summary["max_rel_divergence"] != 0.0:
        print("FAIL: noisy batch is not bitwise identical to noisy scalar",
              file=sys.stderr)
        return 1
    if summary["geomean_noisy_batch_speedup"] < args.min_speedup:
        print(f"FAIL: geomean noisy batch speedup "
              f"{summary['geomean_noisy_batch_speedup']:.1f}x below the "
              f"{args.min_speedup}x floor", file=sys.stderr)
        return 1
    if not montecarlo["bands_stable"]:
        print("FAIL: Monte Carlo bands are not reproducible run to run",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
