"""Figure 14: Graph500.BottomStepUp behaviour over its iterations."""

from repro.experiments import fig14_16_graph500 as experiment


def test_fig14_graph500_phases(benchmark, ctx, emit):
    result = benchmark.pedantic(
        experiment.run, args=(ctx,), rounds=1, iterations=1
    )
    emit("fig14_graph500_phases", experiment.format_report(result))
    # Paper: raw instruction totals vary significantly across iterations.
    assert result.instruction_swing() > 3.0
    assert len(result.phases) == 8
