"""Decomposition of the Harmonia-to-oracle ED² gap."""

from repro.experiments import oracle_gap as experiment


def test_oracle_gap(benchmark, ctx, emit):
    result = benchmark.pedantic(
        experiment.run, args=(ctx,), rounds=1, iterations=1
    )
    emit("oracle_gap", experiment.format_report(result))
    # The orderings must hold: harmonia <= perf-oracle <= oracle.
    for row in result.rows:
        assert row.perf_oracle >= row.harmonia - 0.01
        assert row.oracle >= row.perf_oracle - 0.005
    # The gap is dominated by free profiling, not by trading performance
    # away (which Harmonia refuses by design).
    assert result.mean_adaptation_share() > result.mean_perf_trading_share()
    assert result.mean_perf_trading_share() < 0.03
    # XSBench (2 iterations) is the structural outlier.
    by_app = {r.application: r for r in result.rows}
    assert by_app["XSBench"].adaptation_share > 0.15
