"""Figure 8: branch divergence, kernel size, and frequency sensitivity."""

from repro.experiments import fig08_divergence as experiment


def test_fig08_divergence(benchmark, ctx, emit):
    result = benchmark(experiment.run, ctx)
    emit("fig08_divergence", experiment.format_report(result))
    assert result.divergent_small.frequency_sensitivity < 0.3
    assert result.coherent_large.frequency_sensitivity > 0.7
