"""Extension: coordinated balance vs blind power capping at equal power."""

from repro.experiments import ext_power_capping as experiment


def test_ext_power_capping(benchmark, ctx, emit):
    result = benchmark.pedantic(
        experiment.run, args=(ctx,), rounds=1, iterations=1
    )
    emit("ext_power_capping", experiment.format_report(result))
    # Section 8: Harmonia minimizes performance impact where budget
    # enforcement trades it away — at the same power, coordination wins.
    assert result.mean_advantage() > 0.03
    by_app = {r.application: r for r in result.rows}
    # The advantage is largest where the capper's knob (frequency) is the
    # wrong one: memory-bound applications.
    assert by_app["CoMD"].harmonia_advantage > 0.10
    assert by_app["miniFE"].harmonia_advantage > 0.10
    # And the capper does hold the budget approximately.
    for row in result.rows:
        assert row.capper_power < row.budget * 1.10
