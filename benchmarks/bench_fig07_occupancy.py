"""Figure 7: VGPR-caused occupancy limits vs bandwidth sensitivity."""

from repro.experiments import fig07_occupancy as experiment


def test_fig07_occupancy(benchmark, ctx, emit):
    result = benchmark(experiment.run, ctx)
    emit("fig07_occupancy", experiment.format_report(result))
    assert result.low_occupancy.occupancy == 0.30
    assert result.high_occupancy.occupancy == 1.0
    assert result.low_occupancy.bandwidth_sensitivity < 0.3
    assert result.high_occupancy.bandwidth_sensitivity > 0.7
