"""Figure 12: overall card power saving from Harmonia."""

from repro.experiments import fig10_13_evaluation as experiment


def test_fig12_power(benchmark, ctx, emit):
    result = benchmark.pedantic(
        experiment.run, args=(ctx,), rounds=1, iterations=1
    )
    emit("fig12_power", experiment.format_fig12(result))
    summary = result.summary
    # Paper: 12% average card-power saving, up to ~19%.
    assert 0.08 < summary.geomean_power("harmonia") < 0.20
