"""Tables 2-3: the counter vocabulary and sensitivity-model refit."""

from repro.experiments import table2_table3_models as experiment


def test_table2_table3_models(benchmark, ctx, emit):
    result = benchmark(experiment.run, ctx)
    emit("table2_table3_models", experiment.format_report(result))
    # Paper: correlations 0.91 (compute) and 0.96 (bandwidth).
    assert result.bandwidth_correlation > 0.90
    assert result.compute_correlation > 0.75
    bw_err, comp_err = result.prediction_errors()
    assert bw_err < 0.15 and comp_err < 0.15
