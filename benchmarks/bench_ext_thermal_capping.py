"""Extension: coordinated management under a tight thermal envelope."""

from repro.experiments import ext_thermal_capping as experiment


def test_ext_thermal_capping(benchmark, ctx, emit):
    result = benchmark.pedantic(
        experiment.run, args=(ctx,), rounds=1, iterations=1
    )
    emit("ext_thermal_capping", experiment.format_report(result))
    # Section 7.3 insight 6: under the tight envelope Harmonia's balance
    # becomes a performance win, and it runs cooler than the baseline.
    assert result.mean_speedup() > 0.01
    for row in result.rows:
        assert row.harmonia_peak_temp <= row.baseline_peak_temp + 0.5
