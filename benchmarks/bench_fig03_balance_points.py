"""Figure 3: hardware balance points for MaxFlops, DeviceMemory, LUD."""

from repro.experiments import fig03_balance as experiment


def test_fig03_balance_points(benchmark, ctx, emit):
    results = benchmark.pedantic(
        experiment.run, args=(ctx,), rounds=1, iterations=1
    )
    emit("fig03_balance_points", experiment.format_report(results))
    # Paper shapes: MaxFlops scales ~27x; DeviceMemory saturates at ~4x
    # normalized ops/byte; LUD is compute-bound at high bandwidth.
    assert 20 < results["MaxFlops"].peak_normalized_performance() < 32
    knee = results["DeviceMemory"].curve_at_max_bandwidth().knee_ops_per_byte
    assert 2.5 < knee < 6.0
    lud_curve = results["LUD"].curve_at_max_bandwidth()
    assert lud_curve.knee_ops_per_byte == max(x for x, _ in lud_curve.points)
