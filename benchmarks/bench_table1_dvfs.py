"""Table 1: the HD7970 GPU DVFS table."""

from repro.experiments import table1_dvfs as experiment


def test_table1_dvfs(benchmark, ctx, emit):
    result = benchmark(experiment.run, ctx)
    emit("table1_dvfs", experiment.format_report(result))
    assert result.max_voltage_error() < 1e-9
