"""Figure 9: clock-domain crossings and compute-frequency sensitivity."""

from repro.experiments import fig09_clock_domains as experiment


def test_fig09_clock_domains(benchmark, ctx, emit):
    result = benchmark(experiment.run, ctx)
    emit("fig09_clock_domains", experiment.format_report(result))
    assert result.ic_activity > 0.5
    assert result.frequency_sensitivity > 0.5
    assert result.crossing_limited_points() >= 3
