"""Figure 1: card power breakdown for a memory-intensive workload."""

from repro.experiments import fig01_power_breakdown as experiment


def test_fig01_power_breakdown(benchmark, ctx, emit):
    result = benchmark(experiment.run, ctx)
    emit("fig01_power_breakdown", experiment.format_report(result))
    # Shape: memory is a major consumer alongside the GPU chip.
    assert result.memory_fraction > 0.25
    assert result.gpu_fraction > result.memory_fraction
