"""Ablations over Harmonia's design choices (DESIGN.md §6)."""

import pytest

from repro.experiments import ablations


def _run(benchmark, fn, ctx):
    return benchmark.pedantic(fn, args=(ctx,), rounds=1, iterations=1)


def test_ablation_bin_edges(benchmark, ctx, emit):
    result = _run(benchmark, ablations.ablate_bin_edges, ctx)
    emit("ablation_bin_edges", ablations.format_report(result))
    paper = result.row("edges 30%/70% (paper)")
    # The paper's empirically fixed edges sit at (or within a point of)
    # the best variant; pushing the HIGH edge to 90% collapses ED².
    assert paper.ed2 >= result.best_ed2_variant().ed2 - 0.01
    assert result.row("edges 30%/90%").ed2 < paper.ed2 - 0.05


def test_ablation_fg_tolerance(benchmark, ctx, emit):
    result = _run(benchmark, ablations.ablate_fg_tolerance, ctx)
    emit("ablation_fg_tolerance", ablations.format_report(result))
    default = result.row("tolerance 1.0% (default)")
    loose = result.row("tolerance 10.0%")
    tight = result.row("tolerance 0.2%")
    # Loosening the guard trades performance for power; tightening it
    # protects performance but forfeits savings.
    assert loose.performance < default.performance
    assert loose.power > default.power
    assert tight.performance > default.performance
    assert tight.ed2 < default.ed2


def test_ablation_max_dithering(benchmark, ctx, emit):
    result = _run(benchmark, ablations.ablate_max_dithering, ctx)
    emit("ablation_max_dithering", ablations.format_report(result))
    # The controller is insensitive to the bound over a wide range
    # (per-tunable freezing does the real oscillation control).
    values = [r.ed2 for r in result.rows]
    assert max(values) - min(values) < 0.02


def test_ablation_cg_fg_composition(benchmark, ctx, emit):
    result = _run(benchmark, ablations.ablate_fg_disabled, ctx)
    emit("ablation_cg_fg_composition", ablations.format_report(result))
    # Section 7.1: both levels are necessary; FG provides the bulk of the
    # protection and a large share of the gain.
    cg_only = result.row("CG only")
    harmonia = result.row("FG+CG (Harmonia)")
    assert harmonia.ed2 > cg_only.ed2 + 0.05
    assert harmonia.performance > cg_only.performance


def test_ablation_predictor_source(benchmark, ctx, emit):
    result = _run(benchmark, ablations.ablate_predictor_source, ctx)
    emit("ablation_predictor_source", ablations.format_report(result))
    refit = result.row("refit on this substrate")
    verbatim = result.row("paper Table 3 verbatim")
    # The published weights encode the authors' silicon: verbatim reuse on
    # a different platform misranks sensitivities badly. Retraining with
    # the Section 4 methodology is what ports.
    assert refit.ed2 > verbatim.ed2 + 0.10
    assert refit.performance > verbatim.performance


def test_ablation_measurement_noise(benchmark, ctx, emit):
    result = _run(benchmark, ablations.ablate_measurement_noise, ctx)
    emit("ablation_measurement_noise", ablations.format_report(result))
    clean = result.row("noise 0.0% (default)")
    noisy = result.row("noise 5.0%")
    # Graceful degradation: 5% run-to-run noise costs at most a couple of
    # ED² points and under a point of performance.
    assert noisy.ed2 > clean.ed2 - 0.03
    assert noisy.performance > clean.performance - 0.01
