#!/usr/bin/env python
"""Pipeline-scheduler benchmark: cold-serial vs cold-parallel vs warm.

Runs the full ``reproduce`` pipeline three times in *separate
interpreters*:

* **cold-serial** — fresh store, ``--jobs 1``: the historical baseline,
* **cold-parallel** — fresh store, ``--jobs 0`` (one worker per core):
  experiment-level fan-out composed with intra-experiment fan-outs on
  the shared worker budget,
* **warm-incremental** — the cold-parallel leg's store: every report
  node must be served from the result manifest without executing.

Each child times ``cli.main`` only and writes the ``--profile-json``
per-node breakdown, which lands in the output JSON together with the
critical path. The parent verifies

* every report file is **byte-identical** across all three legs,
* the warm leg **served all 26 report nodes from the manifest** and ran
  none,
* the speedup floors: ``--min-parallel-speedup`` (default 2x, enforced
  only on machines with >= 4 cores — on fewer cores there is nothing to
  fan out over and the floor is waived) and ``--min-warm-speedup``
  (default 10x; the warm leg does no experiment work at all).

Results land in machine-readable JSON (``BENCH_pipeline.json``)::

    PYTHONPATH=src python benchmarks/bench_reproduce_pipeline.py
    PYTHONPATH=src python benchmarks/bench_reproduce_pipeline.py \\
        --min-parallel-speedup 1.5 --out /tmp/b.json
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

#: Executed in a fresh interpreter per leg:
#: argv = (store, reports, profile, jobs, extra-flag...)
_CHILD = """\
import json, sys, time
from repro import cli

argv = ["reproduce", "--output", sys.argv[2], "--cache-dir", sys.argv[1],
        "--profile-json", sys.argv[3], "--jobs", sys.argv[4]]
argv += sys.argv[5:]
t0 = time.perf_counter()
rc = cli.main(argv)
elapsed = time.perf_counter() - t0
assert rc == 0, f"reproduce failed with exit code {rc}"
with open(sys.argv[3]) as fh:
    profile = json.load(fh)
profile["elapsed_s"] = elapsed
with open(sys.argv[3], "w") as fh:
    json.dump(profile, fh)
"""


def _run_leg(store_dir: Path, reports_dir: Path, profile_path: Path,
             jobs: str, extra=()) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    subprocess.run(
        [sys.executable, "-c", _CHILD, str(store_dir), str(reports_dir),
         str(profile_path), jobs, *extra],
        cwd=REPO_ROOT, env=env, check=True,
        stdout=subprocess.DEVNULL,
    )
    with open(profile_path) as fh:
        return json.load(fh)


def _compare_reports(base_dir: Path, other_dir: Path) -> list:
    """Names of report files that differ (empty = byte-identical runs)."""
    base = sorted(p.name for p in base_dir.iterdir())
    other = sorted(p.name for p in other_dir.iterdir())
    if base != other:
        return sorted(set(base) ^ set(other))
    return [name for name in base
            if (base_dir / name).read_bytes()
            != (other_dir / name).read_bytes()]


def _node_breakdown(profile: dict) -> list:
    """Per-node rows sorted by wall time, heaviest first."""
    return sorted(
        ({"node": n["node"], "status": n["status"],
          "wall_s": n["wall_s"], "critical": n["critical"]}
         for n in profile["nodes"]),
        key=lambda row: row["wall_s"], reverse=True,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--min-parallel-speedup", type=float, default=2.0,
                        help="fail if cold --jobs 0 is not at least this "
                             "much faster than cold --jobs 1 (default: 2x; "
                             "waived on machines with < 4 cores)")
    parser.add_argument("--min-warm-speedup", type=float, default=10.0,
                        help="fail if the manifest-served rerun is not at "
                             "least this much faster than cold-serial "
                             "(default: 10x)")
    parser.add_argument("--warm-repeats", type=int, default=3,
                        help="warm-leg repeats, best-of")
    parser.add_argument("--out", default="BENCH_pipeline.json",
                        help="output JSON path (default: "
                             "BENCH_pipeline.json)")
    args = parser.parse_args(argv)
    cores = os.cpu_count() or 1

    with tempfile.TemporaryDirectory(prefix="pipeline-") as scratch:
        scratch = Path(scratch)

        print("cold-serial reproduce (--jobs 1, fresh store) ...")
        serial = _run_leg(scratch / "store-serial", scratch / "r-serial",
                          scratch / "p-serial.json", "1")
        print(f"  {serial['elapsed_s']:.2f}s, critical path "
              f"{serial['critical_path_s']:.2f}s over "
              f"{' -> '.join(serial['critical_path'])}")

        print(f"cold-parallel reproduce (--jobs 0 = {cores} worker(s), "
              f"fresh store) ...")
        parallel = _run_leg(scratch / "store-par", scratch / "r-par",
                            scratch / "p-par.json", "0")
        print(f"  {parallel['elapsed_s']:.2f}s")

        print(f"warm-incremental reproduce (populated store, best of "
              f"{args.warm_repeats}) ...")
        warm = min(
            (_run_leg(scratch / "store-par", scratch / "r-warm",
                      scratch / "p-warm.json", "0")
             for _ in range(max(1, args.warm_repeats))),
            key=lambda leg: leg["elapsed_s"],
        )
        warm_statuses = {n["node"]: n["status"] for n in warm["nodes"]}
        served = sorted(n for n, s in warm_statuses.items()
                        if s == "manifest")
        executed = sorted(n for n, s in warm_statuses.items() if s == "ran")
        print(f"  {warm['elapsed_s']:.3f}s, {len(served)} report node(s) "
              f"manifest-served, {len(executed)} executed")

        differing = sorted(
            set(_compare_reports(scratch / "r-serial", scratch / "r-par"))
            | set(_compare_reports(scratch / "r-serial", scratch / "r-warm"))
        )

    parallel_speedup = serial["elapsed_s"] / parallel["elapsed_s"]
    warm_speedup = serial["elapsed_s"] / warm["elapsed_s"]
    parallel_floor_active = cores >= 4
    summary = {
        "cores": cores,
        "cold_serial_s": serial["elapsed_s"],
        "cold_parallel_s": parallel["elapsed_s"],
        "warm_incremental_s": warm["elapsed_s"],
        "parallel_speedup": parallel_speedup,
        "warm_speedup": warm_speedup,
        "min_parallel_speedup_floor": args.min_parallel_speedup,
        "parallel_floor_enforced": parallel_floor_active,
        # Explicit, machine-readable reason when the floor is waived, so
        # a sub-1.0x speedup next to "enforced: false" reads as "small
        # machine", not as a silently ignored regression.
        "parallel_floor_skipped_reason": (
            None if parallel_floor_active
            else f"only {cores} core(s) < 4: nothing to fan out over"),
        "min_warm_speedup_floor": args.min_warm_speedup,
        "critical_path": serial["critical_path"],
        "critical_path_s": serial["critical_path_s"],
        "warm_served_nodes": served,
        "warm_executed_nodes": executed,
        "reports_identical": not differing,
        "differing_reports": differing,
        "node_breakdown": {
            "cold_serial": _node_breakdown(serial),
            "cold_parallel": _node_breakdown(parallel),
        },
    }
    with open(args.out, "w") as fh:
        json.dump(summary, fh, indent=2)
        fh.write("\n")
    print(f"\nparallel speedup {parallel_speedup:.2f}x, warm speedup "
          f"{warm_speedup:.1f}x (serial {serial['elapsed_s']:.2f}s -> "
          f"parallel {parallel['elapsed_s']:.2f}s -> warm "
          f"{warm['elapsed_s']:.3f}s) -> {args.out}")

    failed = False
    if differing:
        print(f"FAIL: {len(differing)} report(s) differ between modes: "
              f"{', '.join(differing)}", file=sys.stderr)
        failed = True
    if executed:
        print(f"FAIL: warm rerun executed {len(executed)} node(s) instead "
              f"of serving them: {', '.join(executed)}", file=sys.stderr)
        failed = True
    if not served:
        print("FAIL: warm rerun served no nodes from the manifest",
              file=sys.stderr)
        failed = True
    if parallel_speedup < args.min_parallel_speedup:
        if parallel_floor_active:
            print(f"FAIL: parallel speedup {parallel_speedup:.2f}x below "
                  f"the {args.min_parallel_speedup}x floor",
                  file=sys.stderr)
            failed = True
        else:
            print(f"note: parallel floor waived - only {cores} core(s), "
                  "nothing to fan out over")
    if warm_speedup < args.min_warm_speedup:
        print(f"FAIL: warm speedup {warm_speedup:.1f}x below the "
              f"{args.min_warm_speedup}x floor", file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
