#!/usr/bin/env python
"""Telemetry overhead bounds on the Figures 10-13 runner loop.

The telemetry subsystem promises that the disabled (null-object) path is
free: the kernel-boundary loop the ``fig10_13_evaluation`` matrix spends
its time in must not slow down because components now carry a telemetry
handle. This benchmark times that loop three ways over the paper's full
application set under a Harmonia policy:

* **bare**: the seed runner body inlined, with no telemetry anywhere;
* **runner**: ``ApplicationRunner.run`` with its default null handle;
* **active**: ``ApplicationRunner.run`` with a live handle — event sink,
  metrics registry, profiler and span tracker all recording, each
  application run wrapped in a span.

and asserts the null runner stays within 2% of bare
(min-of-rounds timing, re-measured a few times to ride out scheduler
noise) and the fully active runner within a generous 10x.

Run standalone to write the trend-ledger input
(``BENCH_telemetry.json``, metric names matching
``benchmarks.ledger.DEFAULT_GATES["telemetry"]``)::

    PYTHONPATH=src python benchmarks/bench_telemetry_overhead.py
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.policy import LaunchContext
from repro.runtime.simulator import ApplicationRunner
from repro.runtime.trace import LaunchRecord, RunTrace
from repro.telemetry import InMemorySink, Telemetry
from repro.telemetry.spans import SpanTracker

#: Maximum tolerated slowdown of the null-telemetry runner path.
OVERHEAD_BOUND = 1.02

#: Maximum tolerated slowdown with every telemetry piece recording.
#: Deliberately generous — the active path *does* work (events, metric
#: series, profiler sections, spans); the bound catches accidental
#: super-linear blowups, not the expected constant cost.
ACTIVE_BOUND = 10.0

ROUNDS = 5
ATTEMPTS = 4


def _bare_run(platform, application, policy):
    """The seed's uninstrumented runner loop, inlined."""
    policy.reset()
    trace = RunTrace()
    for iteration, kernel, spec in application.launches():
        context = LaunchContext(
            kernel_name=kernel.name, iteration=iteration, spec=spec
        )
        config = policy.config_for(context)
        result = platform.run_kernel(spec, config)
        policy.observe(context, result)
        trace.append(LaunchRecord(
            iteration=iteration, kernel_name=kernel.name, result=result
        ))
    return trace


def _time_sweep(run_one, applications, policy) -> float:
    """Best-of-ROUNDS wall time of one full application sweep."""
    best = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        for application in applications:
            run_one(application, policy)
        best = min(best, time.perf_counter() - start)
    return best


def test_null_telemetry_overhead(ctx, emit):
    platform = ctx.platform
    applications = ctx.applications
    policy = ctx.harmonia_policy()
    runner = ApplicationRunner(platform)
    assert not runner.telemetry.enabled

    def bare(application, policy):
        _bare_run(platform, application, policy)

    def instrumented(application, policy):
        runner.run(application, policy)

    # Warm every cache (predictor training, platform state) before timing.
    bare(applications[0], policy)
    instrumented(applications[0], policy)

    ratio = float("inf")
    for attempt in range(ATTEMPTS):
        bare_s = _time_sweep(bare, applications, policy)
        runner_s = _time_sweep(instrumented, applications, policy)
        ratio = min(ratio, runner_s / bare_s)
        if ratio <= OVERHEAD_BOUND:
            break

    emit("telemetry_overhead", "\n".join([
        "Null-telemetry overhead on the runner loop (all 14 applications)",
        f"bare loop:      {bare_s * 1e3:8.2f} ms",
        f"ApplicationRunner: {runner_s * 1e3:8.2f} ms",
        f"best ratio:     {ratio:8.4f}  (bound {OVERHEAD_BOUND:.2f})",
    ]))
    assert ratio <= OVERHEAD_BOUND, (
        f"null-telemetry runner path is {(ratio - 1):.1%} slower than the "
        f"bare loop (bound {OVERHEAD_BOUND - 1:.0%})"
    )


def test_active_telemetry_overhead(ctx, emit):
    platform = ctx.platform
    applications = ctx.applications
    policy = ctx.harmonia_policy()

    def bare(application, policy):
        _bare_run(platform, application, policy)

    def active(application, policy):
        # Fresh handle per run: unbounded event/span accumulation over
        # ROUNDS sweeps would measure list growth, not telemetry cost.
        telemetry = Telemetry(sink=InMemorySink(), spans=SpanTracker())
        runner = ApplicationRunner(platform, telemetry=telemetry)
        with telemetry.span("bench.run", application=application.name):
            runner.run(application, policy)

    bare(applications[0], policy)
    active(applications[0], policy)

    ratio = float("inf")
    for attempt in range(ATTEMPTS):
        bare_s = _time_sweep(bare, applications, policy)
        active_s = _time_sweep(active, applications, policy)
        ratio = min(ratio, active_s / bare_s)
        if ratio <= ACTIVE_BOUND / 2:
            break

    emit("telemetry_overhead_active", "\n".join([
        "Active-telemetry overhead (events + metrics + profiler + spans)",
        f"bare loop:      {bare_s * 1e3:8.2f} ms",
        f"active runner:  {active_s * 1e3:8.2f} ms",
        f"best ratio:     {ratio:8.4f}  (bound {ACTIVE_BOUND:.2f})",
    ]))
    assert ratio <= ACTIVE_BOUND, (
        f"active-telemetry runner path is {ratio:.2f}x the bare loop "
        f"(bound {ACTIVE_BOUND:.0f}x)"
    )


def main(argv=None) -> int:
    """Standalone entry: measure both ratios, write the ledger input."""
    import argparse
    import json

    from repro.experiments.context import ExperimentContext

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_telemetry.json",
                        help="output JSON path (default: "
                             "BENCH_telemetry.json)")
    args = parser.parse_args(argv)

    ctx = ExperimentContext()
    platform = ctx.platform
    applications = ctx.applications
    policy = ctx.harmonia_policy()
    null_runner = ApplicationRunner(platform)

    def bare(application, policy):
        _bare_run(platform, application, policy)

    def null_instrumented(application, policy):
        null_runner.run(application, policy)

    def active(application, policy):
        telemetry = Telemetry(sink=InMemorySink(), spans=SpanTracker())
        runner = ApplicationRunner(platform, telemetry=telemetry)
        with telemetry.span("bench.run", application=application.name):
            runner.run(application, policy)

    bare(applications[0], policy)
    null_instrumented(applications[0], policy)
    active(applications[0], policy)

    null_ratio = active_ratio = float("inf")
    bare_s = null_s = active_s = float("inf")
    for attempt in range(ATTEMPTS):
        bare_s = min(bare_s, _time_sweep(bare, applications, policy))
        null_s = min(null_s,
                     _time_sweep(null_instrumented, applications, policy))
        active_s = min(active_s, _time_sweep(active, applications, policy))
        null_ratio = null_s / bare_s
        active_ratio = active_s / bare_s
        if null_ratio <= OVERHEAD_BOUND and active_ratio <= ACTIVE_BOUND / 2:
            break

    summary = {
        "bare_s": bare_s,
        "null_runner_s": null_s,
        "active_runner_s": active_s,
        "null_overhead_ratio": null_ratio,
        "active_overhead_ratio": active_ratio,
        "null_bound": OVERHEAD_BOUND,
        "active_bound": ACTIVE_BOUND,
    }
    with open(args.out, "w") as fh:
        json.dump(summary, fh, indent=2)
        fh.write("\n")
    print(f"null overhead {null_ratio:.4f} (bound {OVERHEAD_BOUND}), "
          f"active overhead {active_ratio:.2f}x (bound {ACTIVE_BOUND}) "
          f"-> {args.out}")

    failed = False
    if null_ratio > OVERHEAD_BOUND:
        print(f"FAIL: null-telemetry path {(null_ratio - 1):.1%} over bare "
              f"(bound {OVERHEAD_BOUND - 1:.0%})", file=sys.stderr)
        failed = True
    if active_ratio > ACTIVE_BOUND:
        print(f"FAIL: active-telemetry path {active_ratio:.2f}x over bare "
              f"(bound {ACTIVE_BOUND:.0f}x)", file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
