"""Null-telemetry overhead bound on the Figures 10-13 runner loop.

The telemetry subsystem promises that the disabled (null-object) path is
free: the kernel-boundary loop the ``fig10_13_evaluation`` matrix spends
its time in must not slow down because components now carry a telemetry
handle. This benchmark times that loop two ways over the paper's full
application set under a Harmonia policy:

* **bare**: the seed runner body inlined, with no telemetry anywhere;
* **runner**: ``ApplicationRunner.run`` with its default null handle.

and asserts the runner stays within 2% of bare (min-of-rounds timing,
re-measured a few times to ride out scheduler noise).
"""

from __future__ import annotations

import time

from repro.core.policy import LaunchContext
from repro.runtime.simulator import ApplicationRunner
from repro.runtime.trace import LaunchRecord, RunTrace

#: Maximum tolerated slowdown of the null-telemetry runner path.
OVERHEAD_BOUND = 1.02

ROUNDS = 5
ATTEMPTS = 4


def _bare_run(platform, application, policy):
    """The seed's uninstrumented runner loop, inlined."""
    policy.reset()
    trace = RunTrace()
    for iteration, kernel, spec in application.launches():
        context = LaunchContext(
            kernel_name=kernel.name, iteration=iteration, spec=spec
        )
        config = policy.config_for(context)
        result = platform.run_kernel(spec, config)
        policy.observe(context, result)
        trace.append(LaunchRecord(
            iteration=iteration, kernel_name=kernel.name, result=result
        ))
    return trace


def _time_sweep(run_one, applications, policy) -> float:
    """Best-of-ROUNDS wall time of one full application sweep."""
    best = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        for application in applications:
            run_one(application, policy)
        best = min(best, time.perf_counter() - start)
    return best


def test_null_telemetry_overhead(ctx, emit):
    platform = ctx.platform
    applications = ctx.applications
    policy = ctx.harmonia_policy()
    runner = ApplicationRunner(platform)
    assert not runner.telemetry.enabled

    def bare(application, policy):
        _bare_run(platform, application, policy)

    def instrumented(application, policy):
        runner.run(application, policy)

    # Warm every cache (predictor training, platform state) before timing.
    bare(applications[0], policy)
    instrumented(applications[0], policy)

    ratio = float("inf")
    for attempt in range(ATTEMPTS):
        bare_s = _time_sweep(bare, applications, policy)
        runner_s = _time_sweep(instrumented, applications, policy)
        ratio = min(ratio, runner_s / bare_s)
        if ratio <= OVERHEAD_BOUND:
            break

    emit("telemetry_overhead", "\n".join([
        "Null-telemetry overhead on the runner loop (all 14 applications)",
        f"bare loop:      {bare_s * 1e3:8.2f} ms",
        f"ApplicationRunner: {runner_s * 1e3:8.2f} ms",
        f"best ratio:     {ratio:8.4f}  (bound {OVERHEAD_BOUND:.2f})",
    ]))
    assert ratio <= OVERHEAD_BOUND, (
        f"null-telemetry runner path is {(ratio - 1):.1%} slower than the "
        f"bare loop (bound {OVERHEAD_BOUND - 1:.0%})"
    )
