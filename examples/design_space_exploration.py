"""Design-space exploration: the Section 3 characterization, end to end.

Sweeps the three Figure 3 workloads across all ~450 hardware
configurations, prints the normalized performance curves (ASCII), the
per-memory-configuration balance points, and the Figure 6 metric-optimal
comparison — the analysis that motivates ED² as the control objective.

Run:  python examples/design_space_exploration.py
"""

from repro import get_kernel, make_hd7970_platform
from repro.analysis.balance import knee_of_curve
from repro.analysis.sweep import ConfigSweep
from repro.units import hz_to_mhz

WORKLOADS = (
    ("MaxFlops (compute stress)", "MaxFlops.MaxFlops"),
    ("DeviceMemory (memory stress)", "DeviceMemory.DeviceMemory"),
    ("LUD (scientific)", "LUD.Internal"),
)


def ascii_curve(points, width=56, height=10):
    """Render (x, y) points as a crude ASCII scatter."""
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    grid = [[" "] * width for _ in range(height)]
    for x, y in points:
        col = int((x - x_lo) / (x_hi - x_lo + 1e-12) * (width - 1))
        row = int((y - y_lo) / (y_hi - y_lo + 1e-12) * (height - 1))
        grid[height - 1 - row][col] = "*"
    lines = ["".join(row) for row in grid]
    lines.append(f"x: {x_lo:.1f}..{x_hi:.1f} ops/byte (normalized)   "
                 f"y: {y_lo:.1f}..{y_hi:.1f} perf (normalized)")
    return "\n".join(lines)


def main() -> None:
    platform = make_hd7970_platform()
    f_mem_max = platform.config_space.memory_frequencies[-1]

    for label, kernel_name in WORKLOADS:
        spec = get_kernel(kernel_name).base
        sweep = ConfigSweep(platform, spec)
        reference = sweep.reference_point()

        curve = sweep.curve_for_memory_config(f_mem_max)
        points = [
            (p.platform_ops_per_byte / reference.platform_ops_per_byte,
             p.performance / reference.performance)
            for p in curve
        ]
        print(f"\n=== {label} — performance vs platform ops/byte "
              f"at {hz_to_mhz(f_mem_max):.0f} MHz memory ===")
        print(ascii_curve(points))

        print("balance points per memory configuration:")
        for f_mem in platform.config_space.memory_frequencies:
            knee = knee_of_curve(sweep.curve_for_memory_config(f_mem))
            print(f"  mem {hz_to_mhz(f_mem):6.0f} MHz -> "
                  f"{knee.config.compute.describe():14s} "
                  f"(perf {knee.performance / reference.performance:5.1f}x)")

        print("metric-optimal configurations (Figure 6):")
        best_perf = sweep.optimum_performance()
        for target, point in (("min energy", sweep.optimum_energy()),
                              ("min ED2", sweep.optimum_ed2()),
                              ("max perf", best_perf)):
            print(f"  {target:10s} {point.config.describe():28s} "
                  f"perf={point.performance / best_perf.performance:5.2f} "
                  f"energy={point.energy / best_perf.energy:5.2f} "
                  f"ED2={point.ed2 / best_perf.ed2:5.2f}")


if __name__ == "__main__":
    main()
