"""Bring your own kernel: characterize and tune a custom workload.

Defines a new application (a two-kernel iterative stencil solver with a
halo-exchange pack kernel) from scratch, measures its sensitivities with
the Section 4.1 methodology, sweeps its design space (Figure 3 style), and
runs it under Harmonia — everything a user would do to evaluate the
controller on their own workload.

Run:  python examples/custom_workload.py
"""

from repro import (
    ApplicationRunner,
    BaselinePolicy,
    HarmoniaPolicy,
    KernelSpec,
    all_applications,
    make_hd7970_platform,
    train_predictors,
)
from repro.analysis.balance import find_balance_point
from repro.analysis.sweep import ConfigSweep
from repro.sensitivity.measurement import measure_sensitivities
from repro.units import hz_to_mhz
from repro.workloads.application import Application
from repro.workloads.kernel import CyclicSchedule, WorkloadKernel


def build_application() -> Application:
    """A 27-point stencil sweep plus a bandwidth-hungry halo pack."""
    sweep = KernelSpec(
        name="MySolver.StencilSweep",
        total_workitems=1 << 21,
        workgroup_size=256,
        valu_insts_per_item=900.0,
        vfetch_insts_per_item=27.0,
        vwrite_insts_per_item=1.0,
        bytes_per_fetch=4.0,
        bytes_per_write=8.0,
        vgprs_per_workitem=48,
        sgprs_per_wave=30,
        lds_bytes_per_workgroup=6144,
        branch_divergence=0.04,
        l2_hit_rate=0.75,
        outstanding_per_wave=2.5,
        access_efficiency=0.85,
    )
    halo_pack = KernelSpec(
        name="MySolver.HaloPack",
        total_workitems=1 << 19,
        workgroup_size=256,
        valu_insts_per_item=40.0,
        vfetch_insts_per_item=6.0,
        vwrite_insts_per_item=6.0,
        bytes_per_fetch=16.0,
        bytes_per_write=16.0,
        vgprs_per_workitem=16,
        sgprs_per_wave=16,
        branch_divergence=0.02,
        l2_hit_rate=0.10,
        outstanding_per_wave=4.0,
        access_efficiency=0.90,
    )
    return Application(
        name="MySolver",
        suite="custom",
        kernels=(
            WorkloadKernel(base=sweep),
            # The halo shrinks and grows with the decomposition schedule.
            WorkloadKernel(base=halo_pack,
                           schedule=CyclicSchedule(work_factors=(1.0, 0.5))),
        ),
        iterations=30,
    )


def main() -> None:
    platform = make_hd7970_platform()
    app = build_application()

    # 1. Offline characterization (Section 4.1 methodology).
    print("measured sensitivities:")
    for kernel in app.kernels:
        m = measure_sensitivities(platform, kernel.base)
        print(f"  {kernel.name:24s} compute={m.compute:+.2f} "
              f"bandwidth={m.bandwidth:+.2f} "
              f"(cu={m.cu:+.2f}, f_cu={m.f_cu:+.2f})")

    # 2. Design-space exploration (Figure 3 style) for the main kernel.
    sweep = ConfigSweep(platform, app.kernels[0].base)
    f_mem_max = platform.config_space.memory_frequencies[-1]
    knee = find_balance_point(sweep, f_mem_max)
    best = sweep.optimum_ed2()
    print(f"\nbalance point at {hz_to_mhz(f_mem_max):.0f} MHz memory: "
          f"{knee.config.describe()}")
    print(f"ED2-optimal configuration: {best.config.describe()} "
          f"({best.card_power:.0f} W, {best.time * 1e3:.2f} ms)")

    # 3. Online control. The predictors are trained on the paper's 14
    #    applications — the custom workload is unseen, exactly how a
    #    deployed Harmonia would encounter it.
    training = train_predictors(platform, all_applications())
    runner = ApplicationRunner(platform)
    baseline = runner.run(app, BaselinePolicy(platform.config_space))
    harmonia = runner.run(app, HarmoniaPolicy(
        platform.config_space, training.compute, training.bandwidth
    ))
    ed2_gain = 1 - harmonia.metrics.ed2 / baseline.metrics.ed2
    perf = baseline.metrics.time / harmonia.metrics.time - 1
    print(f"\nHarmonia on the unseen workload: ED2 {ed2_gain:+.1%}, "
          f"performance {perf:+.1%}, "
          f"power {1 - harmonia.metrics.avg_power / baseline.metrics.avg_power:+.1%}")


if __name__ == "__main__":
    main()
