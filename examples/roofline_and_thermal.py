"""Roofline placement and the tight-thermal-envelope what-if.

Two analyses the paper motivates but does not plot:

1. **Roofline placement** — every kernel's demanded ops/byte against the
   boost configuration's ridge point, with the surplus resource Harmonia
   can reclaim (the Section 1 "hardware balance" framing, made
   computable).
2. **The thermal what-if** — Section 7.3's closing insight: in a tightly
   cooled enclosure the always-boost baseline throttles while Harmonia's
   balanced configurations stay inside the envelope.

Run:  python examples/roofline_and_thermal.py
"""

from repro import all_applications, make_hd7970_platform, train_predictors
from repro.analysis.roofline import classify_kernel, ridge_point
from repro.core.baseline import BaselinePolicy
from repro.core.harmonia import HarmoniaPolicy
from repro.power.thermal import ThermalGovernor, ThermalModel
from repro.runtime.simulator import ApplicationRunner
from repro.workloads.registry import all_kernels, get_application


def roofline_section(platform) -> None:
    arch = platform.calibration.arch
    top = platform.baseline_config()
    print(f"boost-configuration ridge point: "
          f"{ridge_point(arch, top):.2f} ops/byte\n")
    print(f"{'kernel':28s} {'ops/byte':>9s} {'regime':>14s} {'surplus':>8s}")
    for kernel in all_kernels():
        point = classify_kernel(arch, kernel.base, top)
        intensity = (f"{point.intensity:9.2f}"
                     if point.intensity < 1e5 else "      inf")
        print(f"{point.kernel:28s} {intensity} "
              f"{point.regime.value:>14s} {point.surplus_fraction:8.0%}")


def thermal_section(platform, training) -> None:
    enclosure = ThermalModel(resistance=0.414, capacitance=0.07)
    print(f"\nconstrained enclosure: "
          f"{enclosure.sustainable_power():.0f} W sustainable, "
          f"cap {enclosure.t_max:.0f} C\n")
    runner = ApplicationRunner(platform)
    for app_name in ("MaxFlops", "Stencil", "LUD"):
        app = get_application(app_name)
        results = {}
        for label, inner in (
            ("baseline", BaselinePolicy(platform.config_space)),
            ("harmonia", HarmoniaPolicy(platform.config_space,
                                        training.compute,
                                        training.bandwidth)),
        ):
            governor = ThermalGovernor(inner, platform.config_space,
                                       enclosure)
            governor.thermal_state.apply(
                0.9 * enclosure.sustainable_power(), 10.0
            )
            run = runner.run(app, governor, reset_policy=False)
            results[label] = (run.metrics.time,
                              governor.thermal_state.peak_temperature)
        base_t, base_peak = results["baseline"]
        hm_t, hm_peak = results["harmonia"]
        print(f"  {app_name:10s} baseline {base_t * 1e3:7.1f} ms "
              f"(peak {base_peak:.1f} C)   harmonia {hm_t * 1e3:7.1f} ms "
              f"(peak {hm_peak:.1f} C)   speedup {base_t / hm_t - 1:+.1%}")


def main() -> None:
    platform = make_hd7970_platform()
    training = train_predictors(platform, all_applications())
    roofline_section(platform)
    thermal_section(platform, training)


if __name__ == "__main__":
    main()
