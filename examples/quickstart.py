"""Quickstart: run one application under PowerTune and under Harmonia.

Builds the simulated HD7970 test bed, trains the paper's sensitivity
predictors (Section 4), runs the CoMD molecular-dynamics proxy under the
shipping baseline and under Harmonia, and prints the energy/performance
outcome the paper's Figures 10-13 aggregate.

Run:  python examples/quickstart.py
"""

from repro import (
    ApplicationRunner,
    BaselinePolicy,
    HarmoniaPolicy,
    all_applications,
    get_application,
    make_hd7970_platform,
    train_predictors,
)


def main() -> None:
    # The simulated test bed: an AMD Radeon HD7970 with 3 GB GDDR5.
    platform = make_hd7970_platform()
    space = platform.config_space
    print(f"platform: {platform.calibration.arch.name}, "
          f"{len(space)} hardware configurations")

    # Train the Table 3 sensitivity predictors on the full workload set.
    training = train_predictors(platform, all_applications())
    print(f"predictors trained: compute r={training.compute_correlation:.2f}, "
          f"bandwidth r={training.bandwidth_correlation:.2f} "
          "(paper: 0.91 / 0.96)")

    # Run CoMD under both policies.
    app = get_application("CoMD")
    runner = ApplicationRunner(platform)
    baseline = runner.run(app, BaselinePolicy(space))
    harmonia = runner.run(
        app, HarmoniaPolicy(space, training.compute, training.bandwidth)
    )

    print(f"\n{app.name} ({app.iterations} iterations, "
          f"{len(app.kernels)} kernels):")
    for label, run in (("baseline", baseline), ("harmonia", harmonia)):
        m = run.metrics
        print(f"  {label:9s} time={m.time * 1e3:7.1f} ms  "
              f"energy={m.energy:6.2f} J  power={m.avg_power:5.1f} W  "
              f"ED2={m.ed2 * 1e3:.3f} mJ s^2")

    ed2_gain = 1 - harmonia.metrics.ed2 / baseline.metrics.ed2
    perf = baseline.metrics.time / harmonia.metrics.time - 1
    power = 1 - harmonia.metrics.avg_power / baseline.metrics.avg_power
    print(f"\nHarmonia vs baseline: ED2 {ed2_gain:+.1%}, "
          f"performance {perf:+.1%}, power {power:+.1%}")

    # Where did Harmonia settle? Per-kernel dominant configurations:
    print("\nper-kernel dominant configurations under Harmonia:")
    for kernel in app.kernels:
        records = harmonia.trace.records_for_kernel(kernel.name)
        total = sum(r.time for r in records)
        by_config = {}
        for r in records:
            by_config[r.config] = by_config.get(r.config, 0.0) + r.time
        config, t = max(by_config.items(), key=lambda kv: kv[1])
        print(f"  {kernel.name:26s} {config.describe():28s} "
              f"({t / total:.0%} of kernel time)")


if __name__ == "__main__":
    main()
