"""The measurement path: DAQ sampling and run-to-run variance.

The paper's numbers come from a National Instruments DAQ card sampling
card power at 1 kHz, with each application run multiple times to average
out run-to-run variance (Section 6). This example reproduces that
measurement path end to end:

1. run an application and sample its power trace with the simulated DAQ,
2. compare DAQ-integrated energy against the analytic value,
3. enable run-to-run noise and show how averaging across repeats recovers
   the deterministic measurement.

Run:  python examples/measurement_rig.py
"""

import statistics

from repro import (
    ApplicationRunner,
    BaselinePolicy,
    get_application,
    make_hd7970_platform,
)
from repro.platform.hd7970 import HardwarePlatform
from repro.power.daq import DaqCard


def main() -> None:
    platform = make_hd7970_platform()
    app = get_application("Streamcluster")
    runner = ApplicationRunner(platform)
    run = runner.run(app, BaselinePolicy(platform.config_space))

    # 1-2. Sample the run's power trace at 1 kHz like the paper's rig.
    daq = DaqCard(sampling_frequency=1000.0, noise_std=0.8, seed=42)
    trace = daq.sample_segments(run.trace.power_segments())
    print(f"run duration: {run.metrics.time * 1e3:.1f} ms, "
          f"{len(trace.samples)} DAQ samples")
    print(f"analytic energy:      {run.metrics.energy:7.3f} J")
    print(f"DAQ-integrated energy:{trace.energy():7.3f} J "
          f"({trace.energy() / run.metrics.energy - 1:+.2%})")
    print(f"DAQ average power:    {trace.average_power():7.1f} W "
          f"(analytic {run.metrics.avg_power:.1f} W)")

    # 3. Run-to-run variance: the paper "ran each application multiple
    #    times and recorded the average".
    print("\nrun-to-run variance (2% execution-time noise):")
    times = []
    for seed in range(8):
        noisy = HardwarePlatform(noise_std_fraction=0.02, seed=seed)
        noisy_run = ApplicationRunner(noisy).run(
            app, BaselinePolicy(noisy.config_space)
        )
        times.append(noisy_run.metrics.time)
        print(f"  run {seed}: {noisy_run.metrics.time * 1e3:7.2f} ms")
    mean = statistics.mean(times)
    spread = statistics.pstdev(times) / mean
    print(f"mean {mean * 1e3:.2f} ms, relative spread {spread:.2%}, "
          f"deterministic value {run.metrics.time * 1e3:.2f} ms "
          f"({mean / run.metrics.time - 1:+.2%} after averaging)")


if __name__ == "__main__":
    main()
