"""Phase adaptation: watch Harmonia track Graph500's BFS levels.

Graph500's BottomStepUp kernel changes behaviour every iteration as the
breadth-first-search frontier expands and contracts (paper Figure 14).
This example runs it under Harmonia and prints, per iteration, the
instruction totals, the sensitivity bins the monitor computed, and the
configuration chosen for the next launch — the paper's Figures 14-16 as a
live trace.

Run:  python examples/graph500_adaptation.py
"""

from repro import (
    ApplicationRunner,
    HarmoniaPolicy,
    all_applications,
    get_application,
    make_hd7970_platform,
    train_predictors,
)
from repro.core.policy import LaunchContext
from repro.units import hz_to_mhz

KERNEL = "Graph500.BottomStepUp"


def main() -> None:
    platform = make_hd7970_platform()
    training = train_predictors(platform, all_applications())
    policy = HarmoniaPolicy(platform.config_space, training.compute,
                            training.bandwidth)
    app = get_application("Graph500")

    print(f"{'it':>3s} {'VALU(M)':>8s} {'VFetch(M)':>9s} "
          f"{'bins':>12s} {'ran at':>26s} {'next':>26s}")
    for iteration, kernel, spec in app.launches():
        context = LaunchContext(kernel_name=kernel.name,
                                iteration=iteration, spec=spec)
        config = policy.config_for(context)
        result = platform.run_kernel(spec, config)
        policy.observe(context, result)
        if kernel.name != KERNEL:
            continue
        state = policy.control_state(kernel.name)
        snap = state.last_snapshot
        nxt = policy.history_for(kernel.name).current_config
        print(f"{iteration:>3d} {result.counters.valu_insts_millions:8.0f} "
              f"{result.counters.vfetch_insts_millions:9.1f} "
              f"{snap.compute_bin.value + '/' + snap.bandwidth_bin.value:>12s} "
              f"{config.describe():>26s} {nxt.describe():>26s}")

    # Residency summary (Figures 15-16).
    run = ApplicationRunner(platform).run(app, policy)
    print("\nmemory-bus residency over the whole run (Figure 15/16):")
    for f_mem, fraction in sorted(run.trace.f_mem_residency().fractions.items()):
        bar = "#" * round(fraction * 40)
        print(f"  {hz_to_mhz(f_mem):6.0f} MHz  {fraction:5.1%}  {bar}")
    print("\ncompute-frequency residency (paper: pinned at boost):")
    for f_cu, fraction in sorted(run.trace.f_cu_residency().fractions.items()):
        print(f"  {hz_to_mhz(f_cu):6.0f} MHz  {fraction:5.1%}")


if __name__ == "__main__":
    main()
