#!/usr/bin/env python
"""Lint the static experiment registry against the experiments package.

The registry (``repro.experiments.registry``) replaced the old
``importlib`` string list; this check keeps it honest. Fails (exit 1)
when:

* an experiment module under ``src/repro/experiments/`` is not claimed
  by any registered :class:`ExperimentSpec` (helpers like ``context``
  and ``registry`` itself are exempt);
* a spec names a module that does not exist in the package;
* a dependency edge points at an unregistered node;
* the dependency graph has a cycle (also enforced at runtime, but the
  lint catches it before anything runs);
* a report node name collides with another node's report file stem.

Run from the repository root:  python tools/check_experiment_registry.py
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.errors import AnalysisError  # noqa: E402
from repro.experiments import registry  # noqa: E402
from repro.runtime.pipeline import topological_order  # noqa: E402

EXPERIMENTS_DIR = REPO_ROOT / "src" / "repro" / "experiments"

#: Modules in the package that are infrastructure, not experiments.
HELPER_MODULES = {"__init__", "context", "registry"}


def check() -> list:
    errors = []
    specs = registry.all_specs()

    package_modules = {
        path.stem for path in EXPERIMENTS_DIR.glob("*.py")
        if path.stem not in HELPER_MODULES
    }
    # "context" hosts the internal training node; it is a helper module
    # but a legitimate spec target.
    claimed = {spec.module for spec in specs}

    for module in sorted(package_modules - claimed):
        errors.append(
            f"experiments module {module!r} has no registered "
            "ExperimentSpec; register it (or add it to HELPER_MODULES "
            "if it is infrastructure)"
        )
    for module in sorted(claimed - package_modules - HELPER_MODULES):
        errors.append(
            f"registered module {module!r} does not exist under "
            "src/repro/experiments/"
        )

    names = {spec.name for spec in specs}
    for spec in specs:
        for dep in spec.deps:
            if dep not in names:
                errors.append(
                    f"node {spec.name!r} depends on unregistered node "
                    f"{dep!r}"
                )

    try:
        topological_order(specs)
    except AnalysisError as error:
        errors.append(f"dependency graph is not schedulable: {error}")

    return errors


def main() -> int:
    errors = check()
    if errors:
        for error in errors:
            print(f"check_experiment_registry: {error}", file=sys.stderr)
        return 1
    specs = registry.all_specs()
    reports = sum(1 for spec in specs if spec.is_report)
    print(
        f"check_experiment_registry: OK ({len(specs)} nodes, "
        f"{reports} report nodes, every experiments module registered)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
