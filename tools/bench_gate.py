#!/usr/bin/env python
"""CI face of the benchmark trend ledger: ingest runs, gate regressions.

Two subcommands::

    python tools/bench_gate.py ingest BENCH_pipeline.json BENCH_sweep.json
    python tools/bench_gate.py check --window 5

``ingest`` appends every given ``BENCH_*.json`` to the ledger (benchmark
name derived from the filename, overridable with ``--bench`` when
ingesting a single file). ``check`` evaluates the per-benchmark gate
rules (:data:`benchmarks.ledger.DEFAULT_GATES`) against the latest entry
of each benchmark, printing one line per gate; any ``regression`` result
exits 1, which is the CI failure.

The ledger file defaults to ``benchmarks/ledger.jsonl``; CI persists it
across runs (actions/cache), so the baseline window survives between
workflow runs on one runner lineage.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT))

from benchmarks import ledger  # noqa: E402


def cmd_ingest(args: argparse.Namespace) -> int:
    path = Path(args.ledger) if args.ledger else ledger.default_ledger_path()
    if args.bench and len(args.files) > 1:
        print("bench_gate: --bench needs exactly one file", file=sys.stderr)
        return 2
    failures = 0
    for file in args.files:
        try:
            entry = ledger.ingest_file(path, file, bench=args.bench)
        except ValueError as error:
            print(f"bench_gate: {error}", file=sys.stderr)
            failures += 1
            continue
        print(f"bench_gate: ingested {entry.bench} "
              f"({len(entry.metrics)} metrics) from {file} into {path}")
    return 1 if failures else 0


def cmd_check(args: argparse.Namespace) -> int:
    path = Path(args.ledger) if args.ledger else ledger.default_ledger_path()
    entries = ledger.read_entries(path)
    if not entries:
        # An empty ledger is not a failure: the first CI run on a fresh
        # cache has nothing to compare yet.
        print(f"bench_gate: ledger {path} is empty; nothing to check")
        return 0
    if args.bench:
        entries = [entry for entry in entries if entry.bench in args.bench]
    results = ledger.evaluate_all_gates(entries, window=args.window)
    if not results:
        print("bench_gate: no gated benchmarks in the ledger")
        return 0
    failures = 0
    for result in results:
        print(f"bench_gate: {result.bench}.{result.metric}: "
              f"{result.status} ({result.detail})")
        # A gated metric that vanished from the latest run would
        # otherwise silently disable its gate — fail on it like a
        # regression.
        if result.status in (ledger.STATUS_REGRESSION,
                             ledger.STATUS_MISSING):
            failures += 1
    if failures:
        print(f"bench_gate: {failures} gate(s) failed", file=sys.stderr)
        return 1
    print(f"bench_gate: OK ({len(results)} gates)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="bench_gate",
        description="benchmark trend ledger ingest + regression gates",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    ingest_p = sub.add_parser("ingest", help="append BENCH_*.json runs")
    ingest_p.add_argument("files", nargs="+", metavar="BENCH_JSON")
    ingest_p.add_argument("--ledger", metavar="PATH", default=None)
    ingest_p.add_argument("--bench", metavar="NAME", default=None,
                          help="benchmark name override (single file only)")
    ingest_p.set_defaults(func=cmd_ingest)

    check_p = sub.add_parser("check", help="gate the latest entries")
    check_p.add_argument("--ledger", metavar="PATH", default=None)
    check_p.add_argument("--window", type=int, default=5, metavar="N",
                         help="baseline = median of up to N prior entries")
    check_p.add_argument("--bench", action="append", default=None,
                         metavar="NAME", help="restrict to one benchmark")
    check_p.set_defaults(func=cmd_check)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
