#!/usr/bin/env python
"""Lint the telemetry event schema against its manifest and docs.

Fails (exit 1) when:

* the current ``SCHEMA_VERSION`` has no entry in ``SCHEMA_MANIFEST``;
* the registered event types (``EVENT_TYPES``) differ from the manifest
  entry for the current version — i.e. someone added/removed an event
  type without bumping the version and recording the new set;
* a historical manifest entry is unsorted or duplicated (the manifest is
  append-only and must stay canonical);
* an event type is missing from the ``docs/telemetry.md`` schema table,
  or the docs mention an event type the schema no longer has.

Run from the repository root:  python tools/check_event_schema.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.telemetry.events import (  # noqa: E402
    EVENT_TYPES,
    SCHEMA_MANIFEST,
    SCHEMA_VERSION,
)

DOCS = REPO_ROOT / "docs" / "telemetry.md"


def check() -> list:
    errors = []
    current = tuple(sorted(EVENT_TYPES))

    if SCHEMA_VERSION not in SCHEMA_MANIFEST:
        errors.append(
            f"SCHEMA_VERSION {SCHEMA_VERSION} has no SCHEMA_MANIFEST entry; "
            "append the current event-type set for it"
        )
    else:
        recorded = SCHEMA_MANIFEST[SCHEMA_VERSION]
        if recorded != current:
            added = set(current) - set(recorded)
            removed = set(recorded) - set(current)
            detail = []
            if added:
                detail.append(f"added {sorted(added)}")
            if removed:
                detail.append(f"removed {sorted(removed)}")
            errors.append(
                f"event types changed ({', '.join(detail)}) but "
                f"SCHEMA_VERSION is still {SCHEMA_VERSION}; bump it and "
                "record the new set in SCHEMA_MANIFEST"
            )

    for version, names in SCHEMA_MANIFEST.items():
        if tuple(sorted(set(names))) != names:
            errors.append(
                f"SCHEMA_MANIFEST[{version}] must be sorted and "
                f"duplicate-free, got {names}"
            )

    if not DOCS.exists():
        errors.append(f"{DOCS} is missing; every event type must be documented")
        return errors

    text = DOCS.read_text()
    # Documented rows look like:  | `KernelLaunch` | ... | — restrict to
    # event-type names (the doc's other tables list snake_case metrics).
    known = {name for names in SCHEMA_MANIFEST.values() for name in names}
    known |= set(current)
    documented = set(re.findall(r"^\|\s*`(\w+)`\s*\|", text, re.MULTILINE))
    documented &= known
    for name in current:
        if name not in documented:
            errors.append(
                f"event type {name} is not documented in docs/telemetry.md "
                "(add a row to the schema table)"
            )
    for name in sorted(documented - set(current)):
        errors.append(
            f"docs/telemetry.md documents {name}, which is not a "
            "registered event type"
        )
    return errors


def main() -> int:
    errors = check()
    if errors:
        for error in errors:
            print(f"check_event_schema: {error}", file=sys.stderr)
        return 1
    print(
        f"check_event_schema: OK (schema v{SCHEMA_VERSION}, "
        f"{len(EVENT_TYPES)} event types, docs in sync)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
