#!/usr/bin/env python
"""Lint the telemetry event schema against its manifest and docs.

Fails (exit 1) when:

* the current ``SCHEMA_VERSION`` has no entry in ``SCHEMA_MANIFEST``;
* the registered event types (``EVENT_TYPES``) differ from the manifest
  entry for the current version — i.e. someone added/removed an event
  type without bumping the version and recording the new set;
* a historical manifest entry is unsorted or duplicated (the manifest is
  append-only and must stay canonical);
* an event type is missing from the ``docs/telemetry.md`` schema table,
  or the docs mention an event type the schema no longer has;
* the span schema (``SPAN_SCHEMA_VERSION`` / ``SPAN_SCHEMA_MANIFEST``)
  drifted from the ``SpanRecord`` fields, or a span field is missing
  from the docs' span-field table.

Run from the repository root:  python tools/check_event_schema.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.telemetry.events import (  # noqa: E402
    EVENT_TYPES,
    SCHEMA_MANIFEST,
    SCHEMA_VERSION,
)
from repro.telemetry.spans import (  # noqa: E402
    SPAN_SCHEMA_MANIFEST,
    SPAN_SCHEMA_VERSION,
    span_fields,
)

DOCS = REPO_ROOT / "docs" / "telemetry.md"


def check() -> list:
    errors = []
    current = tuple(sorted(EVENT_TYPES))

    if SCHEMA_VERSION not in SCHEMA_MANIFEST:
        errors.append(
            f"SCHEMA_VERSION {SCHEMA_VERSION} has no SCHEMA_MANIFEST entry; "
            "append the current event-type set for it"
        )
    else:
        recorded = SCHEMA_MANIFEST[SCHEMA_VERSION]
        if recorded != current:
            added = set(current) - set(recorded)
            removed = set(recorded) - set(current)
            detail = []
            if added:
                detail.append(f"added {sorted(added)}")
            if removed:
                detail.append(f"removed {sorted(removed)}")
            errors.append(
                f"event types changed ({', '.join(detail)}) but "
                f"SCHEMA_VERSION is still {SCHEMA_VERSION}; bump it and "
                "record the new set in SCHEMA_MANIFEST"
            )

    for version, names in SCHEMA_MANIFEST.items():
        if tuple(sorted(set(names))) != names:
            errors.append(
                f"SCHEMA_MANIFEST[{version}] must be sorted and "
                f"duplicate-free, got {names}"
            )

    current_fields = span_fields()
    if SPAN_SCHEMA_VERSION not in SPAN_SCHEMA_MANIFEST:
        errors.append(
            f"SPAN_SCHEMA_VERSION {SPAN_SCHEMA_VERSION} has no "
            "SPAN_SCHEMA_MANIFEST entry; append the current field set"
        )
    else:
        recorded = SPAN_SCHEMA_MANIFEST[SPAN_SCHEMA_VERSION]
        if recorded != current_fields:
            errors.append(
                f"SpanRecord fields changed ({list(current_fields)} vs "
                f"recorded {list(recorded)}) but SPAN_SCHEMA_VERSION is "
                f"still {SPAN_SCHEMA_VERSION}; bump it and record the "
                "new set in SPAN_SCHEMA_MANIFEST"
            )
    for version, fields in SPAN_SCHEMA_MANIFEST.items():
        if tuple(sorted(set(fields))) != fields:
            errors.append(
                f"SPAN_SCHEMA_MANIFEST[{version}] must be sorted and "
                f"duplicate-free, got {fields}"
            )

    if not DOCS.exists():
        errors.append(f"{DOCS} is missing; every event type must be documented")
        return errors

    text = DOCS.read_text()
    # Documented rows look like:  | `KernelLaunch` | ... | — restrict to
    # event-type names (the doc's other tables list snake_case metrics).
    known = {name for names in SCHEMA_MANIFEST.values() for name in names}
    known |= set(current)
    documented = set(re.findall(r"^\|\s*`(\w+)`\s*\|", text, re.MULTILINE))
    documented &= known
    for name in current:
        if name not in documented:
            errors.append(
                f"event type {name} is not documented in docs/telemetry.md "
                "(add a row to the schema table)"
            )
    for name in sorted(documented - set(current)):
        errors.append(
            f"docs/telemetry.md documents {name}, which is not a "
            "registered event type"
        )

    # Span fields use the same backticked-table-row convention.
    known_fields = {field for fields in SPAN_SCHEMA_MANIFEST.values()
                    for field in fields} | set(current_fields)
    documented_fields = set(
        re.findall(r"^\|\s*`(\w+)`\s*\|", text, re.MULTILINE)
    ) & known_fields
    for field in current_fields:
        if field not in documented_fields:
            errors.append(
                f"span field {field} is not documented in "
                "docs/telemetry.md (add a row to the span-field table)"
            )
    for field in sorted(documented_fields - set(current_fields)):
        errors.append(
            f"docs/telemetry.md documents span field {field}, which "
            "SpanRecord no longer has"
        )
    return errors


def main() -> int:
    errors = check()
    if errors:
        for error in errors:
            print(f"check_event_schema: {error}", file=sys.stderr)
        return 1
    print(
        f"check_event_schema: OK (events v{SCHEMA_VERSION}, "
        f"{len(EVENT_TYPES)} event types; spans v{SPAN_SCHEMA_VERSION}, "
        f"{len(span_fields())} fields; docs in sync)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
