"""Dev diagnostic: per-kernel controller behaviour under Harmonia."""
from repro.platform import make_hd7970_platform
from repro.workloads import all_applications
from repro.sensitivity import train_predictors
from repro.core import BaselinePolicy, HarmoniaPolicy
from repro.runtime import ApplicationRunner
from repro.units import MHZ

p = make_hd7970_platform()
apps = all_applications()
report = train_predictors(p, apps)
space = p.config_space
runner = ApplicationRunner(p)

for app in apps:
    hm = HarmoniaPolicy(space, report.compute, report.bandwidth)
    run = runner.run(app, hm)
    base = runner.run(app, BaselinePolicy(space))
    print(f"\n=== {app.name}: ed2_imp={(base.metrics.ed2-run.metrics.ed2)/base.metrics.ed2:+.1%} "
          f"perf={(base.metrics.time/run.metrics.time-1):+.1%} pwr={1-run.metrics.avg_power/base.metrics.avg_power:+.1%}")
    for k in app.kernels:
        recs = run.trace.records_for_kernel(k.name)
        stats = hm.stats(k.name)
        # online snapshot at first & last obs
        snap0 = hm._cg.snapshot(recs[0].result.counters)
        snapN = hm._cg.snapshot(recs[-1].result.counters)
        cfgs = {}
        for r in recs:
            d = r.config.describe()
            cfgs[d] = cfgs.get(d, 0) + r.time
        tot = sum(cfgs.values())
        top = sorted(cfgs.items(), key=lambda kv: -kv[1])[:3]
        tops = ", ".join(f"{c}:{t/tot:.0%}" for c, t in top)
        print(f"  {k.name:28s} bins0=({snap0.compute_bin.value},{snap0.bandwidth_bin.value}) "
          f"s=({snap0.compute:.2f},{snap0.bandwidth:.2f}) cg={stats.cg_actions} fg={stats.fg_actions} ph={stats.phase_changes} | {tops}")
