"""Dev tool: full evaluation headline vs the paper's numbers."""
import math
from repro.platform import make_hd7970_platform
from repro.workloads import all_applications
from repro.workloads.registry import STRESS_BENCHMARKS
from repro.sensitivity import train_predictors
from repro.core import (BaselinePolicy, HarmoniaPolicy, OraclePolicy,
                        make_cg_only_policy, ComputeDvfsOnlyPolicy)
from repro.analysis import EvaluationHarness

p = make_hd7970_platform()
apps = all_applications()
report = train_predictors(p, apps)
space = p.config_space
harness = EvaluationHarness(p, BaselinePolicy(space))
policies = [
    make_cg_only_policy(space, report.compute, report.bandwidth),
    HarmoniaPolicy(space, report.compute, report.bandwidth),
    OraclePolicy(p),
    ComputeDvfsOnlyPolicy(space, report.compute, report.bandwidth),
]
summary = harness.evaluate(apps, policies)
print(f"{'app':14s} {'ED2cg':>7s} {'ED2hm':>7s} {'ED2or':>7s} {'prfhm':>7s} {'prfcg':>7s} {'pwrhm':>7s} {'enehm':>7s}")
for app in apps:
    c = {pol: summary.comparison(app.name, pol) for pol in ("cg-only", "harmonia", "oracle")}
    print(f"{app.name:14s} {c['cg-only'].ed2_improvement:7.1%} {c['harmonia'].ed2_improvement:7.1%} "
          f"{c['oracle'].ed2_improvement:7.1%} {c['harmonia'].performance_delta:7.1%} "
          f"{c['cg-only'].performance_delta:7.1%} {c['harmonia'].power_saving:7.1%} {c['harmonia'].energy_improvement:7.1%}")
for ex in (False, True):
    tag = "geomean2" if ex else "geomean1"
    print(f"{tag:14s} "
          f"cg={summary.geomean_ed2('cg-only', ex):6.1%} hm={summary.geomean_ed2('harmonia', ex):6.1%} "
          f"or={summary.geomean_ed2('oracle', ex):6.1%} dvfs={summary.geomean_ed2('dvfs-only', ex):6.1%} | "
          f"perf hm={summary.geomean_performance('harmonia', ex):+.2%} cg={summary.geomean_performance('cg-only', ex):+.2%} "
          f"dvfs={summary.geomean_performance('dvfs-only', ex):+.2%} | pwr hm={summary.geomean_power('harmonia', ex):5.1%}")
print("\npaper: hm 12% avg / 36% max(BPT), cg ~6%, oracle gap <=3%; perf hm -0.36% avg / -3.6% max(SC), cg -2.2% avg / -27% max(SC); pwr 12% avg / 19% max(Stencil); dvfs-only 3% ED2, -1% perf")
